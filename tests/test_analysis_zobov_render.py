"""Tests for the ZOBOV-style zone finder and the slice renderer."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.core import tessellate
from repro.analysis import connected_components
from repro.analysis.render import ascii_render, slice_field, write_pgm
from repro.analysis.zobov import zobov_voids


def two_void_points(seed=0, size=12.0):
    """A Poisson field with two fully emptied pockets at (3,3,3), (9,9,9)."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, size, size=(1400, 3))
    keep = np.ones(len(pts), dtype=bool)
    for c in (np.array([3.0, 3, 3]), np.array([9.0, 9, 9])):
        keep &= np.linalg.norm(pts - c, axis=1) > 2.2
    return pts[keep]


class TestZobov:
    def test_zones_partition_cells(self):
        pts = two_void_points(1)
        tess = tessellate(pts, Bounds.cube(12.0), nblocks=2, ghost=4.0)
        result = zobov_voids(tess)
        all_members = np.concatenate([z.member_ids for z in result.zones])
        assert sorted(all_members.tolist()) == sorted(tess.site_ids().tolist())

    def test_cores_are_local_minima(self):
        pts = two_void_points(2)
        tess = tessellate(pts, Bounds.cube(12.0), nblocks=1, ghost=4.0)
        result = zobov_voids(tess)
        density = {int(s): 1.0 / v for s, v in zip(tess.site_ids(), tess.volumes())}
        block = tess.blocks[0]
        nb_of = {
            int(block.site_ids[i]): block.neighbors_of_cell(i)
            for i in range(block.num_cells)
        }
        for z in result.zones:
            core = z.core_cell
            for nb in nb_of[core]:
                if int(nb) in density:
                    assert density[int(nb)] >= density[core] - 1e-12

    def test_deep_voids_are_significant(self):
        pts = two_void_points(3)
        tess = tessellate(pts, Bounds.cube(12.0), nblocks=1, ghost=4.5)
        result = zobov_voids(tess)
        deep = result.significant(min_ratio=1.8)
        # The two carved pockets give two deep basins (the global minimum
        # zone counts as infinitely significant), clearly separated in
        # significance from the Poisson-noise basins (~1.1-1.6).
        assert len(deep) >= 2
        # The top two zones' cores sit at the two distinct pockets (their
        # sites are wall particles whose cells bulge into the hole).
        sites = np.concatenate([b.sites for b in tess.blocks])
        ids = np.concatenate([b.site_ids for b in tess.blocks])
        pos_of = {int(i): s for i, s in zip(ids, sites)}
        centers = [np.array([3.0, 3, 3]), np.array([9.0, 9, 9])]
        nearest = [
            int(np.argmin([np.linalg.norm(pos_of[z.core_cell] - c) for c in centers]))
            for z in result.zones[:2]
        ]
        dists = [
            np.linalg.norm(pos_of[z.core_cell] - centers[k])
            for z, k in zip(result.zones[:2], nearest)
        ]
        assert sorted(nearest) == [0, 1]  # one core per pocket
        assert all(d < 3.0 for d in dists)

    def test_global_minimum_zone_never_spills(self):
        pts = two_void_points(4)
        tess = tessellate(pts, Bounds.cube(12.0), nblocks=1, ghost=4.0)
        result = zobov_voids(tess)
        infinite = [z for z in result.zones if not np.isfinite(z.saddle_density)]
        assert len(infinite) == 1
        # It contains the globally largest cell (lowest density).
        vmax_site = int(tess.site_ids()[np.argmax(tess.volumes())])
        assert vmax_site in infinite[0].member_ids

    def test_empty_tessellation(self):
        from repro.core.tessellate import Tessellation

        result = zobov_voids(Tessellation(domain=Bounds.cube(1.0), blocks=[]))
        assert result.num_zones == 0

    def test_zone_count_reasonable(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 10, size=(500, 3))
        tess = tessellate(pts, Bounds.cube(10.0), nblocks=2, ghost=4.0)
        result = zobov_voids(tess)
        # Poisson noise yields many shallow zones, far fewer than cells.
        assert 2 <= result.num_zones < 200


class TestRender:
    def _tess(self, seed=0):
        pts = two_void_points(seed)
        return tessellate(pts, Bounds.cube(12.0), nblocks=2, ghost=4.0)

    def test_slice_shapes_and_values(self):
        tess = self._tess(1)
        img = slice_field(tess, axis=2, resolution=32, value="volume")
        assert img.shape == (32, 32)
        assert np.all(img > 0)
        dens = slice_field(tess, axis=2, resolution=32, value="density")
        np.testing.assert_allclose(dens, 1.0 / img)

    def test_void_pixels_have_large_volume(self):
        tess = self._tess(2)
        img = slice_field(tess, axis=2, coordinate=3.0, resolution=48)
        lo, hi = tess.domain.as_arrays()
        # Pixel nearest (3, 3) in the slice plane.
        res = 48
        iu = int((3.0 - lo[0]) / (hi[0] - lo[0]) * res)
        iv = int((3.0 - lo[1]) / (hi[1] - lo[1]) * res)
        assert img[iu, iv] > np.median(img)

    def test_component_rendering(self):
        tess = self._tess(3)
        vmin = float(np.quantile(tess.volumes(), 0.7))
        lab = connected_components(tess, vmin=vmin)
        img = slice_field(
            tess, axis=0, resolution=24, value="component", labeling=lab
        )
        assert img.min() == -1  # unlabeled background present
        assert img.max() >= 0  # some labeled void pixels

    def test_component_requires_labeling(self):
        with pytest.raises(ValueError):
            slice_field(self._tess(4), value="component")

    def test_bad_args(self):
        t = self._tess(5)
        with pytest.raises(ValueError):
            slice_field(t, axis=3)
        with pytest.raises(ValueError):
            slice_field(t, value="nope")

    def test_ascii_render(self):
        img = np.arange(16, dtype=float).reshape(4, 4)
        art = ascii_render(img, log_scale=False)
        lines = art.split("\n")
        assert len(lines) == 4 and all(len(l) == 4 for l in lines)
        assert art[0] == " " and lines[-1][-1] == "@"

    def test_ascii_flat_field(self):
        art = ascii_render(np.ones((3, 3)))
        assert set(art.replace("\n", "")) == {" "}

    def test_pgm_output(self, tmp_path):
        img = np.random.default_rng(0).uniform(1, 10, size=(16, 16))
        path = tmp_path / "slice.pgm"
        write_pgm(str(path), img)
        data = path.read_bytes()
        assert data.startswith(b"P5\n16 16\n255\n")
        assert len(data) == len(b"P5\n16 16\n255\n") + 256

    def test_render_rejects_3d(self):
        with pytest.raises(ValueError):
            ascii_render(np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            write_pgm("/tmp/x.pgm", np.zeros((2, 2, 2)))
