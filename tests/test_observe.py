"""Tests for the unified tracing & metrics subsystem (repro.observe)."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import observe
from repro.core.timing import PhaseTimer
from repro.diy.comm import run_parallel
from repro.observe import trace


@pytest.fixture(autouse=True)
def _clean_observe():
    """Every test starts and ends with tracing off and no state."""
    observe.disable()
    observe.reset_all()
    yield
    observe.disable()
    observe.reset_all()


def _validate_chrome(doc: dict, expect_ranks: set[int]) -> list[dict]:
    """Assert ``doc`` is a loadable Chrome trace; returns its "X" spans."""
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    for e in spans:
        for key in ("ph", "ts", "dur", "pid", "tid", "name"):
            assert key in e, f"span missing {key}: {e}"
        assert e["ts"] >= 0
        assert e["dur"] >= 0
    assert {e["pid"] for e in spans} == expect_ranks
    # one process_name metadata record per rank
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {m["pid"] for m in meta} == expect_ranks
    # globally ordered by start time
    ts = [e["ts"] for e in spans]
    assert ts == sorted(ts)
    return spans


class TestDisabledMode:
    def test_span_is_shared_noop(self):
        s1 = trace.span("a", rank=0)
        s2 = trace.span("b", rank=1, detail=42)
        assert s1 is s2  # the shared no-op: no allocation per call

    def test_records_nothing_and_allocates_no_buffers(self):
        with trace.span("work", rank=0):
            pass
        trace.record("manual", 0, 0.0, 1.0)
        assert trace.num_events() == 0
        assert trace.raw_events() == []
        assert trace._buffers == {}  # no ring buffers exist at all

    def test_exceptions_propagate_through_noop(self):
        with pytest.raises(RuntimeError):
            with trace.span("boom"):
                raise RuntimeError("boom")


class TestEnabledTracing:
    def test_span_records_interval_and_attrs(self):
        observe.enable()
        with trace.span("work", rank=3, cat="test", step=7):
            time.sleep(0.002)
        (ev,) = trace.raw_events()
        assert ev[trace.NAME] == "work"
        assert ev[trace.RANK] == 3
        assert ev[trace.T1] - ev[trace.T0] >= 0.002
        assert ev[trace.CAT] == "test"
        assert ev[trace.ATTRS] == {"step": 7}

    def test_exceptions_still_record_and_propagate(self):
        observe.enable()
        with pytest.raises(ValueError):
            with trace.span("bad"):
                raise ValueError("x")
        assert trace.num_events() == 1

    def test_ring_buffer_caps_and_counts_drops(self):
        observe.enable(capacity=10)
        for i in range(25):
            trace.record(f"e{i}", 0, float(i), float(i) + 0.5)
        assert trace.num_events() == 10
        assert trace.dropped_events() == 15
        names = [ev[trace.NAME] for ev in trace.raw_events()]
        assert names == [f"e{i}" for i in range(15, 25)]  # oldest evicted
        observe.enable(capacity=trace.DEFAULT_CAPACITY)

    def test_reset_drops_everything(self):
        observe.enable()
        trace.record("e", 0, 0.0, 1.0)
        trace.reset()
        assert trace.num_events() == 0


class TestChromeExport:
    def test_empty_trace_is_valid(self):
        doc = observe.chrome_trace()
        assert doc["traceEvents"] == []

    def test_export_shape_and_normalization(self):
        observe.enable()
        trace.record("a", 0, 100.0, 100.5, cpu=0.25, cat="c1")
        trace.record("b", 1, 100.25, 100.75, attrs={"k": "v"})
        spans = _validate_chrome(observe.chrome_trace(), {0, 1})
        a = next(e for e in spans if e["name"] == "a")
        b = next(e for e in spans if e["name"] == "b")
        assert a["ts"] == 0.0  # normalized to the earliest span
        assert a["dur"] == pytest.approx(0.5e6)
        assert a["args"]["cpu_ms"] == pytest.approx(250.0)
        assert b["ts"] == pytest.approx(0.25e6)
        assert b["args"]["k"] == "v"

    def test_write_chrome_trace_round_trips(self, tmp_path):
        observe.enable()
        trace.record("a", 0, 0.0, 1.0)
        path = tmp_path / "trace.json"
        assert observe.write_chrome_trace(str(path)) == 1
        doc = json.loads(path.read_text())
        _validate_chrome(doc, {0})

    def test_write_jsonl(self, tmp_path):
        observe.enable()
        trace.record("a", 0, 0.0, 1.0)
        trace.record("b", 1, 0.5, 2.0)
        path = tmp_path / "spans.jsonl"
        assert observe.write_jsonl(str(path)) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in rows] == ["a", "b"]
        assert rows[1]["wall_s"] == pytest.approx(1.5)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = observe.registry()
        reg.counter("c", rank=0).inc(3)
        reg.counter("c", rank=0).inc()
        reg.gauge("g").set_max(5)
        reg.gauge("g").set_max(2)  # high-water keeps 5
        h = reg.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = reg.as_dict()
        assert snap["counters"]["c{rank=0}"] == 4
        assert snap["gauges"]["g"] == 5
        assert snap["histograms"]["h"]["count"] == 3
        assert snap["histograms"]["h"]["mean"] == pytest.approx(2.0)
        assert snap["histograms"]["h"]["max"] == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            observe.registry().counter("c").inc(-1)

    def test_kind_mismatch_raises(self):
        reg = observe.registry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_merge_dict_rules(self):
        reg = observe.registry()
        reg.counter("c").inc(1)
        reg.gauge("g").set(10)
        reg.histogram("h").observe(5.0)
        other = {
            "counters": {"c": 2},
            "gauges": {"g": 7, "g2": 3},
            "histograms": {"h": {"count": 2, "total": 8.0, "min": 1.0, "max": 7.0}},
        }
        reg.merge_dict(other)
        snap = reg.as_dict()
        assert snap["counters"]["c"] == 3  # counters add
        assert snap["gauges"]["g"] == 10  # gauges take the max
        assert snap["gauges"]["g2"] == 3
        assert snap["histograms"]["h"]["count"] == 3
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 7.0

    def test_peak_rss_is_positive(self):
        assert observe.peak_rss_bytes() > 1024 * 1024  # at least 1 MB

    def test_reservoir_percentiles(self):
        reg = observe.registry()
        res = reg.reservoir("lat")
        for v in range(1, 101):  # 1..100
            res.observe(float(v))
        assert res.count == 100
        assert res.percentile(50) == pytest.approx(50.5)
        assert res.percentile(99) == pytest.approx(99.01, abs=0.5)
        assert res.percentile(0) == 1.0
        assert res.percentile(100) == 100.0
        snap = reg.as_dict()
        assert snap["reservoirs"]["lat"]["count"] == 100
        assert snap["reservoirs"]["lat"]["p50"] == pytest.approx(50.5)

    def test_reservoir_window_bounds_memory(self):
        class SmallReservoir(observe.QuantileReservoir):
            capacity = 10

        res = SmallReservoir()
        for v in range(1000):
            res.observe(float(v))
        assert res.count == 1000  # lifetime count survives the window
        assert len(res.samples) == 10
        assert res.percentile(0) == 990.0  # window holds the newest only

    def test_reservoir_merge_concatenates_samples(self):
        reg = observe.registry()
        reg.reservoir("lat").observe(1.0)
        other = {
            "reservoirs": {
                "lat": {"count": 2, "samples": [3.0, 5.0]},
            },
        }
        reg.merge_dict(other)
        res = reg.reservoir("lat")
        assert res.count == 3
        assert sorted(res.samples) == [1.0, 3.0, 5.0]


class TestPhaseTimerReentrancy:
    def test_nested_same_phase_not_double_counted(self):
        timer = PhaseTimer()
        with timer.phase("p"):
            with timer.phase("p"):  # re-entry: must not double-count
                time.sleep(0.02)
        assert timer.wall("p") == pytest.approx(0.02, abs=0.015)
        # the regression: pre-fix this accumulated ~2x the sleep
        assert timer.wall("p") < 0.04

    def test_sequential_entries_still_accumulate(self):
        timer = PhaseTimer()
        for _ in range(2):
            with timer.phase("p"):
                time.sleep(0.01)
        assert timer.wall("p") >= 0.02

    def test_reentrant_exception_unwinds_depth(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("p"):
                with timer.phase("p"):
                    raise RuntimeError
        with timer.phase("p"):
            pass
        assert timer.wall("p") > 0  # outermost entries still accumulate

    def test_rank_timer_emits_spans_when_enabled(self):
        observe.enable()
        timer = PhaseTimer(rank=2)
        with timer.phase("compute"):
            pass
        (ev,) = trace.raw_events()
        assert ev[trace.NAME] == "compute"
        assert ev[trace.RANK] == 2
        assert ev[trace.CAT] == "phase"


def _span_worker(comm):
    with trace.span("unit", rank=comm.rank, cat="test", size=comm.size):
        time.sleep(0.001 * (comm.rank + 1))
    return comm.rank


class TestCrossRankMerge:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_span_round_trip(self, backend, nranks):
        observe.enable()
        results = run_parallel(nranks, _span_worker, backend=backend)
        assert results == list(range(nranks))
        events = [ev for ev in trace.raw_events() if ev[trace.NAME] == "unit"]
        assert {ev[trace.RANK] for ev in events} == set(range(nranks))
        spans = _validate_chrome(observe.chrome_trace(), set(range(nranks)))
        assert len([e for e in spans if e["name"] == "unit"]) == nranks
        # rank_finished ran on every rank: comm metrics + memory gauges
        gauges = observe.registry().as_dict()["gauges"]
        for rank in range(nranks):
            assert gauges[f"mem.peak_rss_bytes{{rank={rank}}}"] > 0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_disabled_run_records_nothing(self, backend):
        results = run_parallel(2, _span_worker, backend=backend)
        assert results == [0, 1]
        assert trace.num_events() == 0
        assert len(observe.registry()) == 0


def _tess_worker(comm, npoints=300):
    from repro.core.tessellate import tessellate_distributed
    from repro.diy.bounds import Bounds
    from repro.diy.decomposition import Decomposition

    domain = Bounds.cube(8.0)
    decomp = Decomposition.regular(domain, comm.size, periodic=True)
    rng = np.random.default_rng(9)
    pts = rng.uniform(0.0, 8.0, size=(npoints, 3))
    ids = np.arange(npoints, dtype=np.int64)
    mine = decomp.locate(pts) == comm.rank
    _, timings, _ = tessellate_distributed(
        comm, decomp, pts[mine], ids[mine], ghost=2.5
    )
    return timings


def _gather_worker(comm):
    # one payload well above the 32 KiB shared-memory transport threshold
    arr = np.full(50_000, float(comm.rank))
    gathered = comm.gather(arr, root=0)
    return len(gathered) if comm.rank == 0 else 0


class TestFullRunTracing:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_tessellation_phases_traced(self, backend):
        observe.enable()
        run_parallel(2, _tess_worker, backend=backend)
        names = {ev[trace.NAME] for ev in trace.raw_events()}
        assert {"exchange", "compute", "output"} <= names
        crit = observe.phase_criticals()
        assert crit["compute"] > 0
        # tess histograms absorbed per rank
        hists = observe.registry().as_dict()["histograms"]
        assert hists["tess.compute_s{rank=0}"]["count"] == 1
        assert hists["tess.compute_s{rank=1}"]["count"] == 1

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_simulation_acceptance_spans(self, backend, tmp_path):
        from repro.hacc import SimulationConfig
        from repro.insitu import run_simulation_with_tools

        observe.enable()
        cfg = SimulationConfig(np_side=8, nsteps=4, seed=1)
        spec = {"tools": [
            {"tool": "tessellation", "every": 2, "params": {"ghost": 2.0}},
        ]}
        run_simulation_with_tools(
            cfg, spec, nranks=2, backend=backend,
            checkpoint_dir=str(tmp_path), checkpoint_every=2,
        )
        names = {ev[trace.NAME] for ev in trace.raw_events()}
        required = {
            "step", "exchange", "compute", "output",
            "insitu-tool", "checkpoint",
        }
        assert required <= names, f"missing spans: {required - names}"
        _validate_chrome(observe.chrome_trace(), {0, 1})
        counters = observe.registry().as_dict()["counters"]
        assert counters["ckpt.written{rank=0}"] >= 1

    def test_shm_send_events_on_process_backend(self):
        observe.enable()
        run_parallel(2, _gather_worker, backend="process")
        shm = [ev for ev in trace.raw_events() if ev[trace.NAME] == "shm-send"]
        assert shm, "expected shm-send spans on the process backend"
        assert all(ev[trace.ATTRS]["bytes"] > 0 for ev in shm)


class TestCLI:
    def test_sim_trace_and_metrics_flags(self, tmp_path):
        from repro.cli import sim_main

        deck = tmp_path / "deck.json"
        deck.write_text(json.dumps({
            "simulation": {"np_side": 8, "nsteps": 2, "seed": 1},
            "tools": [{"tool": "statistics", "every": 2}],
        }))
        trace_out = tmp_path / "trace.json"
        metrics_out = tmp_path / "metrics.json"
        rc = sim_main([
            str(deck), "--ranks", "2",
            "--trace", str(trace_out), "--metrics", str(metrics_out),
        ])
        assert rc == 0
        doc = json.loads(trace_out.read_text())
        spans = _validate_chrome(doc, {0, 1})
        assert {"step", "insitu-tool"} <= {e["name"] for e in spans}
        report = json.loads(metrics_out.read_text())
        assert report["trace"]["events"] > 0
        assert report["phase_max_s"]["step"] > 0
        # the CLI disables tracing after the run
        assert not observe.enabled()

    def test_tess_trace_flag(self, tmp_path):
        from repro.cli import tess_main

        trace_out = tmp_path / "trace.json"
        rc = tess_main([
            "--random", "200", "--blocks", "2",
            "--trace", str(trace_out),
        ])
        assert rc == 0
        spans = _validate_chrome(json.loads(trace_out.read_text()), {0, 1})
        assert {"exchange", "compute", "output"} <= {e["name"] for e in spans}
