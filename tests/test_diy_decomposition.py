"""Unit and property tests for repro.diy.decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diy.bounds import Bounds
from repro.diy.decomposition import Decomposition, factor_into_grid


class TestFactorIntoGrid:
    def test_small_counts(self):
        assert factor_into_grid(1) == (1, 1, 1)
        assert factor_into_grid(2) == (2, 1, 1)
        assert factor_into_grid(8) == (2, 2, 2)
        assert factor_into_grid(64) == (4, 4, 4)

    def test_non_cube_counts(self):
        assert np.prod(factor_into_grid(12)) == 12
        assert factor_into_grid(12) == (3, 2, 2)

    def test_prime(self):
        assert factor_into_grid(7) == (7, 1, 1)

    def test_2d(self):
        assert factor_into_grid(4, dim=2) == (2, 2)
        assert factor_into_grid(6, dim=2) == (3, 2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            factor_into_grid(0)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=256))
    def test_product_preserved(self, n):
        grid = factor_into_grid(n)
        assert int(np.prod(grid)) == n
        assert len(grid) == 3


class TestDecompositionStructure:
    def test_block_count_and_bounds_partition(self):
        d = Decomposition(Bounds.cube(8.0), (2, 2, 2))
        assert d.nblocks == 8
        total = sum(b.core.volume for b in d.blocks())
        assert total == pytest.approx(8.0**3)

    def test_gid_coords_roundtrip(self):
        d = Decomposition(Bounds.cube(6.0), (3, 2, 1))
        for gid in range(d.nblocks):
            assert d.gid_of_coords(d.coords_of_gid(gid)) == gid

    def test_regular_constructor(self):
        d = Decomposition.regular(Bounds.cube(8.0), 8)
        assert d.grid == (2, 2, 2)

    def test_mismatched_grid_raises(self):
        with pytest.raises(ValueError):
            Decomposition(Bounds.cube(1.0), (2, 2))

    def test_single_block_periodic_has_self_links(self):
        # A 1x1x1 periodic decomposition links the block to itself through
        # every periodic wrap (needed to ghost across the seam in serial).
        d = Decomposition(Bounds.cube(4.0), (1, 1, 1), periodic=True)
        links = d.block(0).links
        assert len(links) == 26
        assert all(link.gid == 0 and link.is_periodic for link in links)

    def test_single_block_nonperiodic_has_no_links(self):
        d = Decomposition(Bounds.cube(4.0), (1, 1, 1), periodic=False)
        assert d.block(0).links == ()

    def test_interior_block_has_26_neighbors(self):
        d = Decomposition(Bounds.cube(9.0), (3, 3, 3), periodic=False)
        center = d.gid_of_coords((1, 1, 1))
        assert len(d.block(center).links) == 26

    def test_corner_block_nonperiodic(self):
        d = Decomposition(Bounds.cube(9.0), (3, 3, 3), periodic=False)
        corner = d.gid_of_coords((0, 0, 0))
        assert len(d.block(corner).links) == 7  # 2^3 - 1 octant

    def test_corner_block_periodic_sees_26_links(self):
        d = Decomposition(Bounds.cube(9.0), (3, 3, 3), periodic=True)
        corner = d.gid_of_coords((0, 0, 0))
        assert len(d.block(corner).links) == 26

    def test_periodic_wrap_flags(self):
        d = Decomposition(Bounds.cube(4.0), (2, 1, 1), periodic=True)
        b0 = d.block(0)
        wraps = {(l.gid, l.wrap) for l in b0.links}
        # Block 0's +x neighbor is block 1 directly (no wrap) AND block 1
        # through the -x periodic seam.
        assert (1, (0, 0, 0)) in wraps
        assert any(g == 1 and w[0] == -1 for g, w in wraps)

    def test_links_are_symmetric(self):
        d = Decomposition(Bounds.cube(8.0), (2, 2, 2), periodic=True)
        for b in d.blocks():
            for link in b.links:
                back = [
                    l
                    for l in d.block(link.gid).links
                    if l.gid == b.gid
                    and l.wrap == tuple(-w for w in link.wrap)
                ]
                assert back, f"no reverse link for {b.gid}->{link}"


class TestLocate:
    def test_locate_simple(self):
        d = Decomposition(Bounds.cube(8.0), (2, 2, 2))
        gids = d.locate(np.array([[1.0, 1.0, 1.0], [5.0, 5.0, 5.0]]))
        assert gids[0] == d.gid_of_coords((0, 0, 0))
        assert gids[1] == d.gid_of_coords((1, 1, 1))

    def test_locate_on_internal_face(self):
        d = Decomposition(Bounds.cube(8.0), (2, 1, 1))
        # Half-open: x=4 belongs to the upper block.
        assert d.locate(np.array([[4.0, 0.0, 0.0]]))[0] == d.gid_of_coords((1, 0, 0))

    def test_locate_on_domain_upper_face_wraps_when_periodic(self):
        # x = 8.0 is the periodic image of x = 0.0: it belongs to the
        # *first* block, exactly like a particle that drifted across the
        # seam.  (It used to be clamped into the last block, which put
        # seam-straddling particles one block off.)
        d = Decomposition(Bounds.cube(8.0), (2, 1, 1), periodic=True)
        assert d.locate(np.array([[8.0, 0.0, 0.0]]))[0] == d.gid_of_coords((0, 0, 0))

    def test_locate_on_domain_upper_face_clamps_when_nonperiodic(self):
        # A bounded domain is closed at the top: x = 8.0 is still inside
        # and lands in the last block.
        d = Decomposition(Bounds.cube(8.0), (2, 1, 1), periodic=False)
        assert d.locate(np.array([[8.0, 0.0, 0.0]]))[0] == d.gid_of_coords((1, 0, 0))

    def test_locate_wraps_beyond_domain_when_periodic(self):
        # Regression: hi + eps and lo - eps must wrap, not clamp.
        box = 8.0
        d = Decomposition(Bounds.cube(box), (2, 1, 1), periodic=True)
        eps = 1e-9
        hi_plus = d.locate(np.array([[box + eps, 1.0, 1.0]]))[0]
        lo_minus = d.locate(np.array([[-eps, 1.0, 1.0]]))[0]
        assert hi_plus == d.gid_of_coords((0, 0, 0))
        assert lo_minus == d.gid_of_coords((1, 0, 0))
        # Per-axis flags: only the periodic axis wraps.
        d2 = Decomposition(
            Bounds.cube(box), (2, 1, 1), periodic=(True, False, False)
        )
        assert d2.locate(np.array([[box + eps, 1.0, 1.0]]))[0] == 0

    def test_locate_rejects_outside_nonperiodic_domain(self):
        d = Decomposition(Bounds.cube(8.0), (2, 1, 1), periodic=False)
        with pytest.raises(ValueError, match="outside the non-periodic"):
            d.locate(np.array([[8.5, 1.0, 1.0]]))
        with pytest.raises(ValueError, match="outside the non-periodic"):
            d.locate(np.array([[-0.5, 1.0, 1.0]]))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=27))
    def test_locate_agrees_with_contains(self, nblocks):
        d = Decomposition.regular(Bounds.cube(10.0), nblocks)
        rng = np.random.default_rng(nblocks)
        pts = rng.uniform(0.0, 10.0, size=(50, 3))
        gids = d.locate(pts)
        for p, g in zip(pts, gids):
            assert d.block(int(g)).core.contains(p)


class TestGidValidation:
    def test_block_rejects_bad_gid(self):
        d = Decomposition(Bounds.cube(8.0), (2, 2, 2))
        with pytest.raises(ValueError, match=r"gid 8 .*\(2, 2, 2\)"):
            d.block(8)
        with pytest.raises(ValueError, match="gid -1"):
            d.block(-1)

    def test_coords_of_gid_rejects_bad_gid(self):
        d = Decomposition(Bounds.cube(8.0), (2, 2, 2))
        with pytest.raises(ValueError, match="gid 99"):
            d.coords_of_gid(99)

    def test_neighbors_near_point_rejects_bad_gid(self):
        d = Decomposition(Bounds.cube(8.0), (2, 2, 2))
        with pytest.raises(ValueError, match="gid 12"):
            d.neighbors_near_point(12, np.zeros(3), radius=1.0)
        with pytest.raises(ValueError, match="gid 12"):
            d.neighbors_near_points(12, np.zeros((1, 3)), radius=1.0)


class TestNearPointTargeting:
    def test_interior_point_reaches_no_neighbor(self):
        d = Decomposition(Bounds.cube(8.0), (2, 2, 2), periodic=True)
        links = d.neighbors_near_point(0, np.array([2.0, 2.0, 2.0]), radius=1.0)
        assert links == []

    def test_point_near_face_reaches_face_neighbor(self):
        d = Decomposition(Bounds.cube(8.0), (2, 1, 1), periodic=False)
        links = d.neighbors_near_point(0, np.array([3.5, 4.0, 4.0]), radius=1.0)
        assert [l.gid for l in links] == [1]

    def test_point_near_periodic_seam(self):
        d = Decomposition(Bounds.cube(8.0), (2, 1, 1), periodic=True)
        # Block 0 core is [0,4); a point at x=0.5 is near the -x seam, behind
        # which (periodically) lies block 1.
        links = d.neighbors_near_point(0, np.array([0.5, 2.0, 2.0]), radius=1.0)
        assert len(links) == 1
        assert links[0].gid == 1 and links[0].wrap[0] == -1

    def test_corner_point_reaches_multiple(self):
        d = Decomposition(Bounds.cube(8.0), (2, 2, 2), periodic=False)
        links = d.neighbors_near_point(0, np.array([3.9, 3.9, 3.9]), radius=0.5)
        assert len(links) == 7  # face x3, edge x3, corner x1

    def test_vectorized_matches_scalar(self):
        d = Decomposition(Bounds.cube(8.0), (2, 2, 2), periodic=True)
        rng = np.random.default_rng(3)
        pts = rng.uniform(0.0, 4.0, size=(100, 3))
        bulk = d.neighbors_near_points(0, pts, radius=1.2)
        for link, mask in bulk:
            for i, p in enumerate(pts):
                scalar = d.neighbors_near_point(0, p, radius=1.2)
                hit = any(
                    l.gid == link.gid and l.wrap == link.wrap for l in scalar
                )
                assert hit == bool(mask[i])
