"""Parity suite: dict oracle == flat kernels == distributed labeling.

The flat-array component kernels (`ArrayUnionFind`, `adjacency_edges`,
the packed-edge distributed merge) must produce partitions identical to
the per-cell dict oracle — up to label renaming — at 1/2/4 ranks on both
execution backends, including a void spanning the periodic seam, plus a
property test over random thresholds.  Also asserts the distributed merge
ships numpy int64 edge arrays (no pickled tuple lists) with a
CommStats/bytes check.
"""

import numpy as np
import pytest

from repro.analysis.components import (
    connected_components,
    connected_components_dict,
    connected_components_distributed,
)
from repro.analysis.voids import find_voids, find_voids_distributed
from repro.core import tessellate, tessellate_distributed
from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.diy.decomposition import Decomposition

BOX = 10.0


def partition(lab):
    """Canonical form of a labeling: sorted tuple-of-member-tuples."""
    return sorted(
        tuple(sorted(int(s) for s in lab.members(l)))
        for l in range(lab.num_components)
    )


def seam_void_points(seed=11):
    """Dense background with a sparse strip spanning the periodic x seam.

    The strip's big cells form ONE void that wraps through x=0, so any
    block decomposition splits it across ranks — the merge must join it
    back through the periodic boundary edges.
    """
    rng = np.random.default_rng(seed)
    dense = rng.uniform([1.5, 0, 0], [8.5, BOX, BOX], size=(420, 3))
    strip_lo = rng.uniform([0, 0, 0], [1.5, BOX, BOX], size=(5, 3))
    strip_hi = rng.uniform([8.5, 0, 0], [BOX, BOX, BOX], size=(5, 3))
    pts = np.vstack([dense, strip_lo, strip_hi])
    return np.clip(pts, 1e-3, BOX - 1e-3)


@pytest.fixture(scope="module")
def seam_case():
    pts = seam_void_points()
    serial = tessellate(pts, Bounds.cube(BOX), nblocks=1, ghost=4.0)
    vmin = float(np.quantile(serial.volumes(), 0.9))
    return pts, serial, vmin


class TestSerialFlatParity:
    def test_matches_dict_oracle_on_seam_void(self, seam_case):
        pts, serial, vmin = seam_case
        flat = connected_components(serial, vmin=vmin)
        oracle = connected_components_dict(serial, vmin=vmin)
        assert partition(flat) == partition(oracle)

    def test_seam_void_is_one_component(self, seam_case):
        """The sparse strip wraps through x=0: its cells must merge."""
        pts, serial, vmin = seam_case
        flat = connected_components(serial, vmin=vmin)
        strip_ids = set(range(420, 430))  # the 10 strip particles
        strip_labels = {
            int(l)
            for s, l in zip(flat.site_ids, flat.labels)
            if int(s) in strip_ids
        }
        assert len(strip_labels) == 1

    @pytest.mark.parametrize("nblocks", [2, 4, 8])
    def test_multiblock_matches_single_block(self, seam_case, nblocks):
        pts, serial, vmin = seam_case
        multi = tessellate(pts, Bounds.cube(BOX), nblocks=nblocks, ghost=4.0)
        assert partition(connected_components(multi, vmin=vmin)) == partition(
            connected_components(serial, vmin=vmin)
        )

    @pytest.mark.parametrize("quantile", [0.1, 0.35, 0.6, 0.85])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_property_random_thresholds(self, seed, quantile):
        """Flat kernels == oracle for random clouds at random thresholds."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, BOX, size=(250, 3))
        tess = tessellate(pts, Bounds.cube(BOX), nblocks=4, ghost=4.0)
        vmin = float(np.quantile(tess.volumes(), quantile))
        flat = connected_components(tess, vmin=vmin)
        oracle = connected_components_dict(tess, vmin=vmin)
        assert partition(flat) == partition(oracle)
        np.testing.assert_array_equal(flat.site_ids, oracle.site_ids)


def _distributed_worker(comm, pts, ids, decomp, vmin, check_payloads):
    """One rank: tessellate own block, label distributed, verify traffic."""
    mine = decomp.locate(pts) == comm.rank
    block, _, _ = tessellate_distributed(
        comm, decomp, pts[mine], ids[mine], ghost=4.0
    )

    payloads = []
    if check_payloads:
        orig_gather = comm.gather

        def recording_gather(obj, root=0):
            payloads.append(obj)
            return orig_gather(obj, root=root)

        comm.gather = recording_gather

    before = comm.stats.snapshot()
    labeling = connected_components_distributed(comm, block, vmin=vmin)
    delta = comm.stats.since(before)

    if check_payloads:
        comm.gather = orig_gather
        # The merge must ship packed numpy int64 arrays, never Python
        # tuple lists (the old per-object path).
        assert len(payloads) == 2, "expected exactly two gathers (nodes, edges)"
        nodes, edges = payloads
        assert isinstance(nodes, np.ndarray) and nodes.dtype == np.int64
        assert isinstance(edges, np.ndarray) and edges.dtype == np.int64
        assert edges.ndim == 2 and edges.shape[1] == 2
        # CommStats: the merge's collective round happened, and every
        # rank's sent bytes cover at least its own packed arrays (tree
        # gather forwards subtree bundles, so intermediate ranks send
        # more, never less; rank counters also include the bcast).
        assert delta.collective_calls.get("gather") == 2
        assert delta.collective_calls.get("bcast") == 1
        if comm.size > 1 and comm.rank != 0:
            assert delta.bytes_sent >= nodes.nbytes + edges.nbytes
    return labeling


@pytest.mark.parametrize("exec_backend", ["thread", "process"])
@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_distributed_matches_oracle(seam_case, nranks, exec_backend):
    pts, serial, vmin = seam_case
    ids = np.arange(len(pts), dtype=np.int64)
    decomp = Decomposition.regular(Bounds.cube(BOX), nranks, periodic=True)
    ref = partition(connected_components_dict(serial, vmin=vmin))

    labelings = run_parallel(
        nranks, _distributed_worker, pts, ids, decomp, vmin, True,
        backend=exec_backend,
    )
    for lab in labelings:  # identical on all ranks
        np.testing.assert_array_equal(lab.site_ids, labelings[0].site_ids)
        np.testing.assert_array_equal(lab.labels, labelings[0].labels)
    assert partition(labelings[0]) == ref


def _voids_worker(comm, pts, ids, decomp, vmin_fraction):
    mine = decomp.locate(pts) == comm.rank
    block, _, _ = tessellate_distributed(
        comm, decomp, pts[mine], ids[mine], ghost=4.0
    )
    return find_voids_distributed(
        comm, block, vmin_fraction=vmin_fraction, min_cells=2
    )


@pytest.mark.parametrize("exec_backend", ["thread", "process"])
def test_find_voids_distributed_matches_serial(seam_case, exec_backend):
    pts, serial, _ = seam_case
    ids = np.arange(len(pts), dtype=np.int64)
    decomp = Decomposition.regular(Bounds.cube(BOX), 4, periodic=True)
    ref = find_voids(serial, min_cells=2)

    catalogs = run_parallel(
        4, _voids_worker, pts, ids, decomp, 0.1, backend=exec_backend
    )
    for catalog in catalogs:
        assert catalog.vmin == pytest.approx(ref.vmin)
        assert catalog.num_voids == ref.num_voids
        got = sorted(tuple(v.site_ids) for v in catalog.voids)
        want = sorted(tuple(v.site_ids) for v in ref.voids)
        assert got == want
        assert catalog.total_volume() == pytest.approx(ref.total_volume())
