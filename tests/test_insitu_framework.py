"""Tests for the in situ framework: config parsing, scheduling, tools."""

import pytest

from repro.hacc import SimulationConfig
from repro.insitu import (
    CosmologyToolsFramework,
    FrameworkConfig,
    ToolConfig,
    run_simulation_with_tools,
)
from repro.insitu.tools import AnalysisTool


class TestToolConfig:
    def test_explicit_steps(self):
        tc = ToolConfig(tool="tessellation", steps=(5, 10))
        assert tc.schedule(20) == [5, 10, 20]  # final included by default

    def test_every(self):
        tc = ToolConfig(tool="x", every=10, include_final=False)
        assert tc.schedule(35) == [10, 20, 30]

    def test_every_with_final(self):
        tc = ToolConfig(tool="x", every=10)
        assert tc.schedule(35) == [10, 20, 30, 35]

    def test_final_only(self):
        tc = ToolConfig(tool="x")
        assert tc.schedule(7) == [7]

    def test_step_zero_is_initial_conditions(self):
        tc = ToolConfig(tool="x", steps=(0,), include_final=False)
        assert tc.schedule(5) == [0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            ToolConfig(tool="")
        with pytest.raises(ValueError):
            ToolConfig(tool="x", every=0)
        with pytest.raises(ValueError):
            ToolConfig(tool="x", steps=(99,)).schedule(10)


class TestFrameworkConfig:
    def test_from_dict(self):
        fc = FrameworkConfig.from_dict(
            {"tools": [
                {"tool": "tessellation", "every": 5, "params": {"ghost": 3.0}},
                {"tool": "statistics"},
            ]}
        )
        assert len(fc.tools) == 2
        assert fc.tools[0].params == {"ghost": 3.0}

    def test_duplicate_tools_rejected(self):
        with pytest.raises(ValueError):
            FrameworkConfig.from_dict(
                {"tools": [{"tool": "statistics"}, {"tool": "statistics"}]}
            )

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            FrameworkConfig.from_dict({"tools": [{"tool": "x", "cadence": 3}]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FrameworkConfig.from_dict({"tools": []})
        with pytest.raises(ValueError):
            FrameworkConfig.from_dict({})


class TestFramework:
    def test_unknown_tool_name(self):
        fc = FrameworkConfig(tools=(ToolConfig(tool="not_a_tool"),))
        with pytest.raises(ValueError, match="unknown tool"):
            CosmologyToolsFramework(fc)

    def test_serial_run_collects_results(self):
        cfg = SimulationConfig(np_side=8, nsteps=6, seed=1)
        results = run_simulation_with_tools(
            cfg,
            {"tools": [
                {"tool": "tessellation", "steps": [3], "params": {"ghost": 3.5}},
                {"tool": "statistics", "every": 2, "include_final": False},
            ]},
        )
        assert sorted(results["tessellation"]) == [3, 6]
        assert sorted(results["statistics"]) == [2, 4, 6]
        tess = results["tessellation"][6]
        assert tess.num_cells == 512
        assert tess.total_volume() == pytest.approx(8.0**3, rel=1e-6)

    def test_parallel_matches_serial_tessellation(self):
        cfg = SimulationConfig(np_side=8, nsteps=4, seed=2)
        spec = {"tools": [{"tool": "tessellation", "params": {"ghost": 3.5}}]}
        serial = run_simulation_with_tools(cfg, spec, nranks=1)
        par = run_simulation_with_tools(cfg, spec, nranks=4)
        t_s = serial["tessellation"][4]
        t_p = par["tessellation"][4]
        assert t_p.num_cells == t_s.num_cells
        vs = dict(zip(t_s.site_ids().tolist(), t_s.volumes().tolist()))
        vp = dict(zip(t_p.site_ids().tolist(), t_p.volumes().tolist()))
        for sid, v in vs.items():
            assert vp[sid] == pytest.approx(v, rel=1e-6)

    def test_simulation_seconds_aggregated(self):
        """The driver reports max-over-ranks simulation stepping time and
        still behaves like the plain results mapping."""
        from repro.insitu import InsituResults

        cfg = SimulationConfig(np_side=8, nsteps=3, seed=9)
        spec = {"tools": [{"tool": "statistics", "steps": [3]}]}
        results = run_simulation_with_tools(cfg, spec, nranks=2)
        assert isinstance(results, InsituResults)
        assert results.simulation_seconds > 0
        assert "statistics" in results
        assert sorted(results) == ["statistics"]
        assert len(results) == 1
        assert 3 in results["statistics"]

    def test_halo_tool_runs(self):
        cfg = SimulationConfig(np_side=12, nsteps=15, seed=3)
        results = run_simulation_with_tools(
            cfg,
            {"tools": [{"tool": "halo_finder",
                        "params": {"linking_length": 0.25, "min_members": 8}}]},
            nranks=2,
        )
        cat = results["halo_finder"][15]
        assert cat.num_halos >= 1  # structure has formed by z=0

    def test_custom_tool_registration(self):
        @CosmologyToolsFramework.register
        class CountTool(AnalysisTool):
            name = "particle_count"

            def run(self, sim, step, a, comm, context=None):
                n = len(sim.local)
                return n if comm is None else comm.allreduce(n)

        cfg = SimulationConfig(np_side=8, nsteps=2, seed=4)
        results = run_simulation_with_tools(
            cfg, {"tools": [{"tool": "particle_count"}]}, nranks=2
        )
        assert results["particle_count"][2] == 512

    def test_tess_output_written_in_situ(self, tmp_path):
        from repro.core import read_tessellation

        pattern = str(tmp_path / "step{step}.tess")
        cfg = SimulationConfig(np_side=8, nsteps=4, seed=5)
        results = run_simulation_with_tools(
            cfg,
            {"tools": [{"tool": "tessellation",
                        "steps": [2],
                        "params": {"ghost": 3.5, "output_pattern": pattern}}]},
            nranks=2,
        )
        for step in (2, 4):
            ondisk = read_tessellation(str(tmp_path / f"step{step}.tess"))
            assert ondisk.num_cells == results["tessellation"][step].num_cells

    def test_checkpointed_run_and_resume_skip_done_steps(self, tmp_path):
        """A checkpointed framework run resumes from the newest checkpoint
        and does not re-fire tools for already-analyzed steps."""
        ckpt = str(tmp_path / "ckpts")
        cfg = SimulationConfig(np_side=8, nsteps=4, seed=6)
        spec = {"tools": [{"tool": "statistics", "every": 1}]}

        first = run_simulation_with_tools(
            cfg, spec, nranks=2, checkpoint_dir=ckpt, checkpoint_every=2
        )
        assert first.resumed_step == -1
        assert sorted(first["statistics"]) == [1, 2, 3, 4]

        resumed = run_simulation_with_tools(
            cfg, spec, nranks=2, checkpoint_dir=ckpt, checkpoint_every=2,
            resume=True,
        )
        assert resumed.resumed_step == 4  # final-step checkpoint
        assert sorted(resumed["statistics"]) == []  # nothing left to analyze
