"""Backend-parity suite: thread and process execution must agree exactly.

The point of the process backend is that it carries the existing
Communicator contract on a different transport — so the tessellation, the
parallel writer, and the in situ driver must produce *bit-identical*
results under ``backend="thread"`` and ``backend="process"`` at every rank
count.  These tests pin that contract, plus CommStats sanity (nonzero
traffic, matching collective call counts across backends).
"""

import numpy as np
import pytest

from repro.core.tessellate import tessellate
from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.hacc import SimulationConfig
from repro.insitu import run_simulation_with_tools

RANK_COUNTS = (1, 2, 4, 8)


def _cloud(n=400, box=10.0, seed=11):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, box, size=(n, 3)), Bounds.cube(box)


class TestTessellationParity:
    @pytest.mark.parametrize("nblocks", RANK_COUNTS)
    def test_bit_identical_cells(self, nblocks):
        points, domain = _cloud()
        thread = tessellate(points, domain, nblocks=nblocks, exec_backend="thread")
        process = tessellate(points, domain, nblocks=nblocks, exec_backend="process")
        assert thread.num_cells == process.num_cells
        assert [b.gid for b in thread.blocks] == [b.gid for b in process.blocks]
        np.testing.assert_array_equal(thread.site_ids(), process.site_ids())
        np.testing.assert_array_equal(thread.volumes(), process.volumes())
        np.testing.assert_array_equal(thread.areas(), process.areas())
        for tb, pb in zip(thread.blocks, process.blocks):
            np.testing.assert_array_equal(tb.vertices, pb.vertices)
            np.testing.assert_array_equal(tb.face_vertices, pb.face_vertices)
            np.testing.assert_array_equal(tb.face_neighbors, pb.face_neighbors)

    def test_multi_block_per_rank_parity(self):
        points, domain = _cloud(n=300, seed=4)
        thread = tessellate(
            points, domain, nblocks=8, nranks=2, exec_backend="thread"
        )
        process = tessellate(
            points, domain, nblocks=8, nranks=2, exec_backend="process"
        )
        np.testing.assert_array_equal(thread.site_ids(), process.site_ids())
        np.testing.assert_array_equal(thread.volumes(), process.volumes())

    def test_output_files_identical(self, tmp_path):
        points, domain = _cloud(n=250, seed=7)
        paths = {}
        for backend in ("thread", "process"):
            paths[backend] = str(tmp_path / f"{backend}.tess")
            tessellate(
                points,
                domain,
                nblocks=4,
                exec_backend=backend,
                output_path=paths[backend],
            )
        with open(paths["thread"], "rb") as f:
            thread_bytes = f.read()
        with open(paths["process"], "rb") as f:
            process_bytes = f.read()
        assert thread_bytes == process_bytes

    def test_process_backend_moves_bytes_through_shared_memory(self, monkeypatch):
        # Lower the inline threshold so the ghost payload buffers take the
        # shared-memory path.  Forked ranks inherit the patched module, but
        # persistent pool workers fork only once — release any pool from an
        # earlier run so the workers fork *after* the patch, and again on
        # the way out so the patched value doesn't leak into later tests.
        from repro.diy import transport
        from repro.diy.process_backend import shutdown_pool

        shutdown_pool()
        monkeypatch.setattr(transport, "SHM_THRESHOLD", 1024)
        try:
            points, domain = _cloud(n=1500, seed=2)
            tess = tessellate(points, domain, nblocks=4, exec_backend="process")
            assert tess.timings.shm_bytes_sent > 0
            assert tess.timings.shm_msgs_sent > 0
            # The same run on threads never touches shared memory.
            tess_t = tessellate(points, domain, nblocks=4, exec_backend="thread")
            assert tess_t.timings.shm_bytes_sent == 0
            np.testing.assert_array_equal(tess.volumes(), tess_t.volumes())
        finally:
            shutdown_pool()  # workers forked with the patched threshold


class TestInsituParity:
    @pytest.mark.parametrize("nranks", (1, 2, 4))
    def test_simulation_with_tools_identical(self, nranks):
        cfg = SimulationConfig(np_side=8, nsteps=3, seed=2)
        spec = {
            "tools": [
                {"tool": "tessellation", "params": {"ghost": 3.5}, "steps": [3]},
                {"tool": "statistics", "steps": [3]},
            ]
        }
        thread = run_simulation_with_tools(cfg, spec, nranks=nranks)
        process = run_simulation_with_tools(
            cfg, spec, nranks=nranks, backend="process"
        )
        t_tess = thread["tessellation"][3]
        p_tess = process["tessellation"][3]
        assert t_tess.num_cells == p_tess.num_cells
        np.testing.assert_array_equal(t_tess.site_ids(), p_tess.site_ids())
        np.testing.assert_array_equal(t_tess.volumes(), p_tess.volumes())
        t_hist = thread["statistics"][3]
        p_hist = process["statistics"][3]
        np.testing.assert_array_equal(t_hist.counts, p_hist.counts)
        assert process.simulation_seconds > 0


class TestCommStatsParity:
    def test_counters_nonzero_and_collectives_match(self):
        def worker(comm):
            comm.bcast(np.arange(1000) if comm.rank == 0 else None)
            comm.allreduce(float(comm.rank))
            comm.gather(np.full(30_000, comm.rank, dtype=np.float64))
            comm.barrier()
            return comm.stats.as_dict()

        thread = run_parallel(4, worker, backend="thread")
        process = run_parallel(4, worker, backend="process")
        for t, p in zip(thread, process):
            assert t["bytes_sent"] > 0 and p["bytes_sent"] > 0
            assert t["collective_calls"] == p["collective_calls"]
            assert t["msgs_sent"] == p["msgs_sent"]
            assert t["bytes_sent"] == p["bytes_sent"]
            assert t["shm_bytes_sent"] == 0
        # The 240 KB gather payloads must have ridden shared memory.
        assert any(p["shm_bytes_sent"] > 0 for p in process)
