"""Tests for the parallel tessellation pipeline (repro.core)."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.diy.decomposition import Decomposition
from repro.core import (
    Tessellation,
    match_tessellations,
    read_tessellation,
    tessellate,
    tessellate_block,
    tessellate_distributed,
)
from repro.core.ghost import exchange_ghost_particles


def random_points(n: int, size: float, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0, size, size=(n, 3))


class TestGhostExchange:
    def test_ghosts_carry_ids(self):
        domain = Bounds.cube(8.0)
        decomp = Decomposition(domain, (2, 1, 1), periodic=True)

        def worker(comm):
            gid = comm.rank
            lo, hi = decomp.block(gid).core.as_arrays()
            rng = np.random.default_rng(gid)
            pos = rng.uniform(lo, hi, size=(100, 3))
            ids = np.arange(100) + gid * 1000
            gpos, gids = exchange_ghost_particles(
                decomp, comm, gid, pos, ids, ghost=1.5
            )
            return gpos, gids

        out = run_parallel(2, worker)
        # Block 0's ghosts came from block 1 (ids 1000+) and periodic images
        # of its own particles (grid is 2x1x1 so y/z seams are self-links).
        gpos0, gids0 = out[0]
        assert len(gids0) > 0
        assert np.all((gids0 >= 1000) | (gids0 < 100))
        ghost_box = decomp.block(0).core.grown(1.5)
        assert np.all(ghost_box.contains_closed(gpos0))

    def test_zero_ghost_returns_empty(self):
        domain = Bounds.cube(8.0)
        decomp = Decomposition(domain, (2, 1, 1), periodic=True)

        def worker(comm):
            pos = random_points(10, 4.0, comm.rank)
            return exchange_ghost_particles(
                decomp, comm, comm.rank, pos, np.arange(10), ghost=0.0
            )

        for gpos, gids in run_parallel(2, worker):
            assert len(gpos) == 0 and len(gids) == 0

    def test_negative_ghost_rejected(self):
        domain = Bounds.cube(8.0)
        decomp = Decomposition(domain, (1, 1, 1), periodic=True)

        def worker(comm):
            return exchange_ghost_particles(
                decomp, comm, 0, np.zeros((1, 3)), np.zeros(1), ghost=-1.0
            )

        with pytest.raises(Exception):
            run_parallel(1, worker)


class TestTessellateBlock:
    def test_serial_periodic_all_complete(self):
        """One block + its own periodic ghosts completes every cell."""
        domain = Bounds.cube(10.0)
        pts = random_points(300, 10.0, seed=1)
        tess = tessellate(pts, domain, nblocks=1, ghost=4.0)
        assert tess.num_cells == 300
        assert tess.total_volume() == pytest.approx(domain.volume, rel=1e-9)

    def test_no_ghost_boundary_cells_deleted(self):
        domain = Bounds.cube(10.0)
        pts = random_points(300, 10.0, seed=2)
        tess = tessellate(pts, domain, nblocks=1, ghost=0.0)
        assert 0 < tess.num_cells < 300  # interior survives, boundary culled

    def test_nonperiodic_mode(self):
        domain = Bounds.cube(10.0)
        pts = random_points(400, 10.0, seed=3)
        tess = tessellate(pts, domain, nblocks=2, ghost=3.0, periodic=False)
        # Domain-boundary cells are incomplete without periodic ghosts.
        assert 0 < tess.num_cells < 400

    def test_volume_threshold_culling(self):
        domain = Bounds.cube(10.0)
        pts = random_points(500, 10.0, seed=4)
        full = tessellate(pts, domain, nblocks=1, ghost=3.0)
        vmin = float(np.quantile(full.volumes(), 0.5))
        culled = tessellate(pts, domain, nblocks=1, ghost=3.0, vmin=vmin)
        assert culled.num_cells < full.num_cells
        assert np.all(culled.volumes() >= vmin)
        # Exactly the cells at/above the threshold survive.
        expect = set(full.site_ids()[full.volumes() >= vmin].tolist())
        assert set(culled.site_ids().tolist()) == expect

    def test_vmax_culling(self):
        domain = Bounds.cube(10.0)
        pts = random_points(300, 10.0, seed=5)
        full = tessellate(pts, domain, nblocks=1, ghost=3.0)
        vmax = float(np.quantile(full.volumes(), 0.8))
        culled = tessellate(pts, domain, nblocks=1, ghost=3.0, vmax=vmax)
        assert np.all(culled.volumes() <= vmax)

    def test_clip_backend_block_api(self):
        domain = Bounds.cube(6.0)
        pts = random_points(100, 6.0, seed=6)
        cells = tessellate_block(
            pts,
            np.arange(100),
            np.empty((0, 3)),
            np.empty(0, dtype=np.int64),
            container=domain,
            backend="clip",
        )
        assert all(c.volume > 0 for c in cells)
        # No ghosts: every complete cell is interior.
        for c in cells:
            assert np.all(c.neighbor_ids >= 0)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            tessellate_block(
                np.zeros((1, 3)), np.zeros(1), np.empty((0, 3)), np.empty(0),
                container=Bounds.cube(1.0), backend="nope",
            )

    def test_empty_block(self):
        cells = tessellate_block(
            np.empty((0, 3)), np.empty(0), np.empty((0, 3)), np.empty(0),
            container=Bounds.cube(1.0),
        )
        assert cells == []


class TestBackendEquivalence:
    @pytest.mark.parametrize("nblocks", [1, 4])
    def test_qhull_fast_path_matches_clip(self, nblocks):
        domain = Bounds.cube(12.0)
        pts = random_points(600, 12.0, seed=7)
        fast = tessellate(pts, domain, nblocks=nblocks, ghost=3.0, backend="qhull")
        ref = tessellate(pts, domain, nblocks=nblocks, ghost=3.0, backend="clip")
        m = match_tessellations(fast, ref, vol_rtol=1e-7)
        assert m.cells_parallel == m.cells_reference == m.cells_matching

    def test_fast_path_face_statistics(self):
        domain = Bounds.cube(12.0)
        pts = random_points(800, 12.0, seed=8)
        tess = tessellate(pts, domain, nblocks=2, ghost=3.0)
        b = tess.blocks[0]
        assert 13.0 < b.faces_per_cell() < 17.5
        assert 4.5 < b.vertices_per_face() < 6.0


class TestParallelInvariants:
    def test_no_duplicate_cells_across_blocks(self):
        domain = Bounds.cube(10.0)
        pts = random_points(800, 10.0, seed=9)
        tess = tessellate(pts, domain, nblocks=8, ghost=3.0)
        ids = tess.site_ids()
        assert len(np.unique(ids)) == len(ids) == 800

    def test_partition_of_unity(self):
        domain = Bounds.cube(10.0)
        pts = random_points(500, 10.0, seed=10)
        tess = tessellate(pts, domain, nblocks=4, ghost=4.0)
        assert tess.total_volume() == pytest.approx(domain.volume, rel=1e-9)

    def test_cells_sited_in_own_block(self):
        domain = Bounds.cube(10.0)
        pts = random_points(400, 10.0, seed=11)
        tess = tessellate(pts, domain, nblocks=4, ghost=3.0)
        for b in tess.blocks:
            assert np.all(b.extents.contains(b.sites))

    def test_accuracy_improves_with_ghost(self):
        """Table I dynamics: accuracy monotone in ghost size, 100% when
        the ghost zone is sufficient."""
        domain = Bounds.cube(12.0)
        pts = random_points(700, 12.0, seed=12)
        serial = tessellate(pts, domain, nblocks=1, ghost=4.0)
        accs = []
        for g in (0.0, 1.0, 2.0, 4.0):
            par = tessellate(pts, domain, nblocks=8, ghost=g)
            accs.append(match_tessellations(par, serial).accuracy_percent)
        assert accs == sorted(accs)
        assert accs[0] < 70.0
        assert accs[-1] == pytest.approx(100.0)

    def test_more_blocks_lower_accuracy_at_zero_ghost(self):
        domain = Bounds.cube(12.0)
        pts = random_points(700, 12.0, seed=13)
        serial = tessellate(pts, domain, nblocks=1, ghost=4.0)
        acc = [
            match_tessellations(
                tessellate(pts, domain, nblocks=nb, ghost=0.0), serial
            ).accuracy_percent
            for nb in (2, 4, 8)
        ]
        assert acc[0] > acc[-1]

    def test_timings_populated(self):
        domain = Bounds.cube(8.0)
        pts = random_points(200, 8.0, seed=14)
        tess = tessellate(pts, domain, nblocks=2, ghost=2.0)
        assert tess.timings.compute > 0
        assert tess.timings.compute_cpu > 0


class TestDistributedInSitu:
    def test_insitu_entry_point(self):
        """Call the SPMD primitive directly with pre-distributed particles."""
        domain = Bounds.cube(8.0)
        decomp = Decomposition.regular(domain, 4, periodic=True)
        pts = random_points(400, 8.0, seed=15)
        ids = np.arange(400, dtype=np.int64)

        def worker(comm):
            mine = decomp.locate(pts) == comm.rank
            block, timings, nbytes = tessellate_distributed(
                comm, decomp, pts[mine], ids[mine], ghost=3.5
            )
            return block

        blocks = run_parallel(4, worker)
        total = sum(b.num_cells for b in blocks)
        assert total == 400
        vol = sum(float(b.volumes.sum()) for b in blocks)
        assert vol == pytest.approx(domain.volume, rel=1e-9)


class TestTessIO:
    def test_write_read_roundtrip(self, tmp_path):
        domain = Bounds.cube(8.0)
        pts = random_points(300, 8.0, seed=16)
        path = str(tmp_path / "out.tess")
        tess = tessellate(pts, domain, nblocks=4, ghost=2.5, output_path=path)
        assert tess.output_bytes > 0

        back = read_tessellation(path)
        assert back.num_blocks == 4
        assert back.num_cells == tess.num_cells
        assert back.domain == domain
        np.testing.assert_allclose(
            np.sort(back.volumes()), np.sort(tess.volumes()), rtol=1e-12
        )
        for orig, rd in zip(tess.blocks, back.blocks):
            assert rd.gid == orig.gid
            assert rd.extents == orig.extents
            np.testing.assert_array_equal(rd.site_ids, orig.site_ids)
            np.testing.assert_array_equal(rd.face_neighbors, orig.face_neighbors)

    def test_serial_write_method(self, tmp_path):
        domain = Bounds.cube(8.0)
        pts = random_points(200, 8.0, seed=17)
        tess = tessellate(pts, domain, nblocks=2, ghost=2.5)
        path = str(tmp_path / "serial.tess")
        nbytes = tess.write(path)
        assert nbytes > 0
        back = read_tessellation(path)
        assert back.num_cells == tess.num_cells

    def test_subset_read(self, tmp_path):
        from repro.core.tess_io import read_blocks

        domain = Bounds.cube(8.0)
        pts = random_points(200, 8.0, seed=18)
        path = str(tmp_path / "sub.tess")
        tessellate(pts, domain, nblocks=4, ghost=2.5, output_path=path)
        blocks, dom = read_blocks(path, gids=[2])
        assert len(blocks) == 1 and blocks[0].gid == 2
        assert dom == domain


class TestTessellationContainer:
    def test_empty(self):
        t = Tessellation(domain=Bounds.cube(1.0), blocks=[])
        assert t.num_cells == 0
        assert t.total_volume() == 0.0
        assert len(t.volumes()) == 0

    def test_cells_iteration(self):
        domain = Bounds.cube(8.0)
        pts = random_points(100, 8.0, seed=19)
        tess = tessellate(pts, domain, nblocks=2, ghost=2.5)
        cells = list(tess.cells())
        assert len(cells) == tess.num_cells
        v1 = sorted(c.volume for c in cells)
        v2 = sorted(tess.volumes())
        np.testing.assert_allclose(v1, v2)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            tessellate(np.zeros((5, 2)), Bounds.cube(1.0))
        with pytest.raises(ValueError):
            tessellate(np.full((5, 3), 9.0), Bounds.cube(1.0))  # outside
        with pytest.raises(ValueError):
            tessellate(
                np.full((5, 3), 0.5), Bounds.cube(1.0), ids=np.arange(3)
            )


class TestAccuracyMatcher:
    def test_duplicate_cells_detected(self):
        domain = Bounds.cube(8.0)
        pts = random_points(50, 8.0, seed=20)
        t = tessellate(pts, domain, nblocks=1, ghost=2.5)
        dup = Tessellation(domain=domain, blocks=t.blocks + t.blocks)
        with pytest.raises(ValueError):
            match_tessellations(dup, t)

    def test_perfect_self_match(self):
        domain = Bounds.cube(8.0)
        pts = random_points(100, 8.0, seed=21)
        t = tessellate(pts, domain, nblocks=1, ghost=2.5)
        m = match_tessellations(t, t)
        assert m.accuracy_percent == 100.0
        assert m.cells_matching == m.cells_parallel
