"""Tests for the Catalyst-style live subscription mode."""

import pytest

from repro.hacc import SimulationConfig
from repro.insitu import CosmologyToolsFramework, FrameworkConfig, ToolConfig


def framework(**tool_kwargs):
    return CosmologyToolsFramework(
        FrameworkConfig(
            tools=(ToolConfig(tool="statistics", every=2,
                              include_final=False, **tool_kwargs),)
        )
    )


class TestLiveSubscription:
    def test_callbacks_fire_per_step(self):
        fw = framework()
        seen = []
        fw.subscribe("statistics", lambda step, a, result: seen.append(step))
        fw.run(SimulationConfig(np_side=8, nsteps=6, seed=1))
        assert seen == [2, 4, 6]
        assert sorted(fw.results["statistics"]) == seen

    def test_callback_receives_live_result(self):
        fw = framework()
        payloads = {}

        def consumer(step, a, result):
            payloads[step] = (a, result)

        fw.subscribe("statistics", consumer)
        fw.run(SimulationConfig(np_side=8, nsteps=4, seed=2))
        for step, (a, hist) in payloads.items():
            assert hist is fw.results["statistics"][step]
            assert 0 < a <= 1.0

    def test_multiple_subscribers(self):
        fw = framework()
        a_calls, b_calls = [], []
        fw.subscribe("statistics", lambda s, a, r: a_calls.append(s))
        fw.subscribe("statistics", lambda s, a, r: b_calls.append(s))
        fw.run(SimulationConfig(np_side=8, nsteps=2, seed=3))
        assert a_calls == b_calls == [2]

    def test_unknown_tool_rejected(self):
        fw = framework()
        with pytest.raises(ValueError, match="unknown tool"):
            fw.subscribe("paraview", lambda s, a, r: None)

    def test_live_rendering_pipeline(self, tmp_path):
        """End-to-end: a subscriber writes a PGM slice per tessellation —
        the paper's run-time-visualization loop in miniature."""
        from repro.analysis.render import slice_field, write_pgm

        fw = CosmologyToolsFramework(
            FrameworkConfig(
                tools=(ToolConfig(tool="tessellation", every=3,
                                  include_final=False,
                                  params={"ghost": 3.5}),)
            )
        )
        written = []

        def render(step, a, tess):
            path = str(tmp_path / f"slice_{step}.pgm")
            write_pgm(path, slice_field(tess, resolution=16))
            written.append(path)

        fw.subscribe("tessellation", render)
        fw.run(SimulationConfig(np_side=8, nsteps=6, seed=4))
        assert len(written) == 2
        for path in written:
            assert open(path, "rb").read(2) == b"P5"
