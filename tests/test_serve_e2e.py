"""End-to-end tests for the tessellation query server.

Drives a real :class:`~repro.serve.server.TessServer` on an ephemeral
port through the load-generator client — the same concurrent-load shape
the CI service job runs, scaled down.  Covers: zero errors at >= 32
in-flight on a cold then warm cache, catalog conditional GETs (304),
HTTP-level backpressure (503 + Retry-After at the admission limit),
republish visibility through a live server, and the metrics endpoint.

pytest-asyncio is not a dependency; each test owns its loop via
``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core import tessellate
from repro.diy.bounds import Bounds
from repro.serve import (
    CatalogStore,
    QueryBatcher,
    ServeConfig,
    ServerBusy,
    TessServer,
    default_query_mix,
    run_load,
)
from repro.serve.protocol import read_response, render_request

BOX = 8.0
NPOINTS = 300


def _tess(seed: int):
    pts = np.random.default_rng(seed).uniform(0.0, BOX, size=(NPOINTS, 3))
    return tessellate(pts, Bounds.cube(BOX), nblocks=2)


@pytest.fixture()
def store(tmp_path):
    store = CatalogStore(tmp_path)
    for step in range(2):
        store.publish(step, _tess(seed=step))
    yield store
    store.close()


async def _request(port: int, method: str, path: str, payload=None,
                   headers=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode() if payload is not None else b""
    writer.write(render_request(method, path, body, headers=headers))
    await writer.drain()
    resp = await read_response(reader)
    writer.close()
    return resp


def test_concurrent_load_cold_and_warm(store):
    async def scenario():
        server = TessServer(store, ServeConfig(port=0))
        await server.start()
        try:
            queries = default_query_mix(BOX, store.steps())
            cold = await run_load(
                "127.0.0.1", server.port, queries,
                requests=64, concurrency=32,
            )
            warm = await run_load(
                "127.0.0.1", server.port, queries,
                requests=64, concurrency=32,
            )
            stats = server.cache.stats.as_dict()
        finally:
            await server.close()
        return cold, warm, stats

    cold, warm, stats = asyncio.run(scenario())
    for report in (cold, warm):
        assert report.errors == []
        assert report.requests == 64
        assert set(report.statuses) == {200}
    # every block was faulted exactly once across both passes: 2 steps x
    # 2 blocks, and the warm pass ran entirely from cache
    assert stats["loads"] == 4
    assert stats["hits"] > stats["loads"]


def test_catalog_conditional_get(store):
    async def scenario():
        server = TessServer(store, ServeConfig(port=0))
        await server.start()
        try:
            first = await _request(server.port, "GET", "/catalog")
            etag = first.headers["etag"]
            second = await _request(
                server.port, "GET", "/catalog",
                headers={"if-none-match": etag},
            )
        finally:
            await server.close()
        return first, second

    first, second = asyncio.run(scenario())
    assert first.status == 200
    assert len(first.json()["snapshots"]) == 2
    assert second.status == 304
    assert second.body == b""


def test_republish_visible_through_live_server(store):
    async def scenario():
        server = TessServer(store, ServeConfig(port=0))
        await server.start()
        try:
            before = await _request(
                server.port, "POST", "/query", {"op": "voids", "step": 0}
            )
            # another process republishes step 0 behind the server's back
            publisher = CatalogStore(store.root)
            publisher.publish(0, _tess(seed=99))
            publisher.close()
            after = await _request(
                server.port, "POST", "/query", {"op": "voids", "step": 0}
            )
        finally:
            await server.close()
        return before, after

    before, after = asyncio.run(scenario())
    assert before.status == 200 and after.status == 200
    assert before.json()["etag"] != after.json()["etag"]
    assert after.headers["etag"] == f'"{after.json()["etag"]}"'


def test_query_error_statuses(store):
    async def scenario():
        server = TessServer(store, ServeConfig(port=0))
        await server.start()
        try:
            unknown = await _request(
                server.port, "POST", "/query", {"op": "explode"}
            )
            missing = await _request(
                server.port, "POST", "/query", {"op": "voids", "step": 42}
            )
            not_json = await _request(server.port, "POST", "/query")
            wrong_method = await _request(server.port, "GET", "/query")
        finally:
            await server.close()
        return unknown, missing, not_json, wrong_method

    unknown, missing, not_json, wrong_method = asyncio.run(scenario())
    assert unknown.status == 400
    assert "unknown op" in unknown.json()["error"]
    assert missing.status == 404
    assert not_json.status == 400
    assert wrong_method.status == 405


def test_http_backpressure_503_with_retry_after(store, monkeypatch):
    import time

    import repro.serve.server as server_mod

    real_run_query = server_mod.run_query

    def slow_run_query(domain, blocks, spec):
        time.sleep(0.2)
        return real_run_query(domain, blocks, spec)

    monkeypatch.setattr(server_mod, "run_query", slow_run_query)

    async def scenario():
        config = ServeConfig(
            port=0, workers=1, max_inflight=1, retry_after_s=0.01
        )
        server = TessServer(store, config)
        await server.start()
        try:
            resps = await asyncio.gather(
                *(
                    _request(server.port, "POST", "/query", {"op": "voids"})
                    for _ in range(6)
                )
            )
        finally:
            await server.close()
        return resps

    resps = asyncio.run(scenario())
    statuses = sorted(r.status for r in resps)
    assert 200 in statuses, statuses
    assert 503 in statuses, statuses
    for resp in resps:
        if resp.status == 503:
            assert float(resp.headers["retry-after"]) > 0
            assert resp.json()["error"] == "busy"


def test_batcher_busy_rejection_unit():
    import threading

    async def scenario():
        batcher = QueryBatcher(
            max_workers=1, window_s=0.001, max_inflight=1, retry_after_s=0.01
        )
        gate = threading.Event()
        first = asyncio.ensure_future(
            batcher.submit("a", lambda: gate.wait(5))
        )
        await asyncio.sleep(0.01)  # first job is admitted and in flight
        with pytest.raises(ServerBusy):
            await batcher.submit("b", lambda: "never runs")
        gate.set()
        assert await first is True
        batcher.shutdown()

    asyncio.run(scenario())


def test_batching_groups_same_key_jobs():
    async def scenario():
        batcher = QueryBatcher(max_workers=2, window_s=0.05)
        jobs = [
            batcher.submit("same-key", lambda i=i: i) for i in range(5)
        ]
        results = await asyncio.gather(*jobs)
        batcher.shutdown()
        return results

    assert asyncio.run(scenario()) == [0, 1, 2, 3, 4]


def test_metrics_endpoint(store):
    async def scenario():
        server = TessServer(store, ServeConfig(port=0))
        await server.start()
        try:
            for _ in range(3):
                await _request(server.port, "POST", "/query", {"op": "voids"})
            resp = await _request(server.port, "GET", "/metrics")
        finally:
            await server.close()
        return resp

    resp = asyncio.run(scenario())
    assert resp.status == 200
    metrics = resp.json()
    assert metrics["latency_ms"]["count"] >= 3
    assert metrics["latency_ms"]["p50"] <= metrics["latency_ms"]["p99"]
    assert metrics["cache"]["loads"] >= 1
    assert metrics["uptime_s"] > 0


def test_cli_build_creates_catalog(tmp_path, capsys):
    from repro.serve.cli import main

    root = str(tmp_path / "cat")
    rc = main(["build", root, "--points", "200", "--blocks", "2",
               "--steps", "1", "--box", str(BOX)])
    assert rc == 0
    assert "catalog ready" in capsys.readouterr().out
    built = CatalogStore(root)
    try:
        assert built.steps() == [0]
        snap = built.snapshot(0)
        assert snap.nblocks == 2
        assert snap.domain.volume == pytest.approx(BOX**3)
    finally:
        built.close()


def test_healthz(store):
    async def scenario():
        server = TessServer(store, ServeConfig(port=0))
        await server.start()
        try:
            return await _request(server.port, "GET", "/healthz")
        finally:
            await server.close()

    resp = asyncio.run(scenario())
    assert resp.status == 200
    assert resp.json() == {"status": "ok"}
