"""Parity suite for temporal feature tracking.

The flat overlap kernel, the retained dict oracle, and the distributed
tracker must produce identical feature trees — bit for bit, including
per-track volume histories — at 1/2/4 ranks on both execution backends.
Also covers: the merge-arbitration bugfix (overlap count beats dict
insertion order), a periodic-seam void that merges across a step
boundary, checkpointable builder state, the merger-tree on-disk format,
invalid-cell masking in the in situ tool's threshold path, and
kill-and-resume producing a bit-identical tree.
"""

import os

import numpy as np
import pytest

from repro import faults, observe
from repro.analysis.components import (
    ComponentLabeling,
    connected_components,
    connected_components_distributed,
)
from repro.analysis.tracking import (
    FeatureTreeBuilder,
    MergerTree,
    local_labeling,
    overlap_matrix,
    overlap_matrix_dict,
    track_components,
    track_components_distributed,
)
from repro.core import tessellate, tessellate_distributed
from repro.diy.bounds import Bounds
from repro.diy.comm import ParallelError, run_parallel
from repro.diy.decomposition import Decomposition

BOX = 10.0


@pytest.fixture(autouse=True)
def _clear_faults():
    yield
    faults.clear()


def _labeling(groups):
    """ComponentLabeling from tuples of member site ids (canonical labels:
    components numbered by their smallest member id, matching the
    union-find output)."""
    roots = sorted(groups, key=min)
    site_ids, labels = [], []
    for label, group in enumerate(roots):
        for sid in group:
            site_ids.append(sid)
            labels.append(label)
    order = np.argsort(site_ids)
    return ComponentLabeling(
        site_ids=np.asarray(site_ids, dtype=np.int64)[order],
        labels=np.asarray(labels, dtype=np.int64)[order],
    )


def _random_labeling(rng, n_ids, n_comp):
    ids = np.sort(rng.choice(5000, size=n_ids, replace=False)).astype(np.int64)
    raw = rng.integers(0, n_comp, size=n_ids)
    _, labels = np.unique(raw, return_inverse=True)
    return ComponentLabeling(site_ids=ids, labels=labels.astype(np.int64))


class TestOverlapKernels:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_flat_matches_dict_oracle(self, seed):
        rng = np.random.default_rng(seed)
        a = _random_labeling(rng, int(rng.integers(5, 400)), 8)
        b = _random_labeling(rng, int(rng.integers(5, 400)), 8)
        la, lb, n = overlap_matrix(a, b)
        oracle = overlap_matrix_dict(a, b)
        got = {(int(x), int(y)): int(c) for x, y, c in zip(la, lb, n)}
        assert got == oracle
        # flat output is (la, lb)-lexsorted — the event-order contract
        keys = list(zip(la.tolist(), lb.tolist()))
        assert keys == sorted(keys)

    def test_disjoint_and_empty(self):
        a = _labeling([(0, 1), (5, 6)])
        b = _labeling([(100, 101)])
        la, lb, n = overlap_matrix(a, b)
        assert len(la) == len(lb) == len(n) == 0
        empty = ComponentLabeling(
            site_ids=np.empty(0, dtype=np.int64),
            labels=np.empty(0, dtype=np.int64),
        )
        la, lb, n = overlap_matrix(a, empty)
        assert len(la) == 0

    @pytest.mark.parametrize("kernel", ["flat", "dict"])
    @pytest.mark.parametrize("seed", [10, 11])
    def test_tree_identical_across_kernels(self, seed, kernel):
        rng = np.random.default_rng(seed)
        labelings = {
            s: _random_labeling(rng, int(rng.integers(10, 300)), 6)
            for s in range(4)
        }
        assert track_components(labelings, kernel=kernel) == track_components(
            labelings, kernel="flat"
        )


class TestMergeArbitration:
    def test_overlap_winner_beats_insertion_order(self):
        """Regression: the merged child must continue the largest-overlap
        parent's track, not the parent that happens to iterate first.

        Parent 0 (insertion-order first) shares 1 cell with the child;
        parent 1 shares 3.  The old head-iteration claim handed the child
        to parent 0.
        """
        step0 = _labeling([(0, 1), (10, 11, 12, 13)])
        step1 = _labeling([(1, 10, 11, 12)])
        tree = track_components({0: step0, 1: step1})

        assert tree.counts() == {"merge": 1}
        (event,) = tree.events
        assert event.labels_from == (0, 1) and event.labels_to == (0,)
        by_start = {t.labels[0]: t for t in tree.tracks if t.steps[0] == 0}
        assert by_start[1].steps == [0, 1]  # overlap winner continues
        assert by_start[0].steps == [0]  # insertion-order winner loses

    def test_merge_tie_breaks_to_smaller_parent_label(self):
        step0 = _labeling([(0, 1), (10, 11)])
        step1 = _labeling([(1, 10)])  # both parents share exactly 1 cell
        tree = track_components({0: step0, 1: step1})
        by_start = {t.labels[0]: t for t in tree.tracks if t.steps[0] == 0}
        assert by_start[0].steps == [0, 1]
        assert by_start[1].steps == [0]

    def test_split_child_tie_breaks_to_smaller_child_label(self):
        step0 = _labeling([(0, 1, 2, 3)])
        step1 = _labeling([(0, 1), (2, 3)])  # equal 2-cell overlaps
        tree = track_components({0: step0, 1: step1})
        parent = next(t for t in tree.tracks if t.steps[0] == 0)
        assert parent.steps == [0, 1]
        assert parent.labels == [0, 0]  # smaller child label claimed


class TestBuilderState:
    @pytest.mark.parametrize("volumes", [False, True])
    def test_state_roundtrip_mid_sequence(self, volumes):
        rng = np.random.default_rng(7)
        labelings = {
            s: _random_labeling(rng, int(rng.integers(20, 200)), 5)
            for s in range(5)
        }
        vols = {
            s: rng.uniform(0.5, 2.0, size=lab.num_components)
            for s, lab in labelings.items()
        }

        full = FeatureTreeBuilder()
        resumed = None
        for s in range(5):
            v = vols[s] if volumes else None
            full.push(s, labelings[s], volumes=v)
            if s == 2:
                resumed = FeatureTreeBuilder.from_state(full.state())
            elif s > 2:
                resumed.push(s, labelings[s], volumes=v)
        assert resumed.tree() == full.tree()
        assert resumed.last_step == full.last_step == 4

    def test_rejects_non_monotonic_steps(self):
        builder = FeatureTreeBuilder()
        builder.push(3, _labeling([(0, 1)]))
        with pytest.raises(ValueError, match="strictly increasing"):
            builder.push(3, _labeling([(0, 1)]))

    def test_rejects_inconsistent_volumes(self):
        builder = FeatureTreeBuilder()
        builder.push(0, _labeling([(0, 1)]), volumes=np.array([1.0]))
        with pytest.raises(ValueError, match="every push"):
            builder.push(1, _labeling([(0, 1)]))


class TestMergerTreeFormat:
    def test_save_load_roundtrip(self, tmp_path):
        rng = np.random.default_rng(21)
        labelings = {
            s: _random_labeling(rng, int(rng.integers(20, 200)), 5)
            for s in range(4)
        }
        vols = {
            s: rng.uniform(0.5, 2.0, size=lab.num_components)
            for s, lab in labelings.items()
        }
        tree = track_components(labelings, volumes=vols)
        mt = MergerTree.from_tree(tree)
        assert mt.to_tree() == tree

        path = str(tmp_path / "tree.npz")
        mt.save(path)
        loaded = MergerTree.load(path)
        assert set(loaded.arrays) == set(mt.arrays)
        for key in mt.arrays:
            np.testing.assert_array_equal(loaded.arrays[key], mt.arrays[key])
        assert loaded.to_tree() == tree
        assert loaded.counts() == tree.counts()

    def test_load_rejects_unknown_format(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez(path, meta=np.array('{"format": "not-a-tree"}'))
        with pytest.raises(ValueError, match="format"):
            MergerTree.load(path)


# ----------------------------------------------------------------------
# distributed == serial, bit-identically
# ----------------------------------------------------------------------
def _synthetic_tracking_worker(comm, step_arrays, min_overlap):
    """One rank: restrict each step's global labeling to the site ids this
    rank owns (round-robin by id) and run the distributed tracker."""
    labelings, cell_volumes = {}, {}
    for step, (sids, labels, vols) in step_arrays.items():
        mine = sids % comm.size == comm.rank
        labelings[step] = ComponentLabeling(
            site_ids=sids[mine], labels=labels[mine]
        )
        cell_volumes[step] = vols[mine]
    return track_components_distributed(
        comm, labelings, min_overlap=min_overlap, cell_volumes=cell_volumes
    )


@pytest.mark.parametrize("exec_backend", ["thread", "process"])
@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_distributed_matches_serial_bit_identically(nranks, exec_backend):
    """Per-rank linked trees == the serial oracle, volumes included."""
    rng = np.random.default_rng(3)
    labelings = {
        s: _random_labeling(rng, int(rng.integers(50, 300)), 7)
        for s in range(4)
    }
    step_arrays = {}
    serial_vols = {}
    for s, lab in labelings.items():
        cell_vols = rng.uniform(0.5, 2.0, size=len(lab.site_ids))
        step_arrays[s] = (lab.site_ids, lab.labels, cell_vols)
        # Serial per-label sums in ascending-site-id order — the same
        # order the distributed root accumulates in.
        comp = np.zeros(lab.num_components)
        np.add.at(comp, lab.labels, cell_vols)
        serial_vols[s] = comp

    ref = track_components(labelings, volumes=serial_vols)
    trees = run_parallel(
        nranks,
        _synthetic_tracking_worker,
        step_arrays,
        1,
        backend=exec_backend,
    )
    for tree in trees:  # identical on every rank, bit for bit
        assert tree == ref
        for got, want in zip(tree.tracks, ref.tracks):
            assert got.volumes == want.volumes


def _mismatched_steps_worker(comm):
    steps = {0: _labeling([(0, 1)])}
    if comm.rank == 1:
        steps[1] = _labeling([(0, 1)])
    return track_components_distributed(comm, steps)


def test_distributed_rejects_mismatched_step_sets():
    with pytest.raises(ParallelError, match="same step sequence"):
        run_parallel(2, _mismatched_steps_worker)


def _duplicate_owner_worker(comm):
    # Both ranks claim site id 0 — the root must refuse to link it.
    lab = _labeling([(0, 1 + comm.rank)])
    return track_components_distributed(comm, {0: lab})


def test_distributed_rejects_duplicate_ownership():
    with pytest.raises(ParallelError, match="more than one rank"):
        run_parallel(2, _duplicate_owner_worker)


# ----------------------------------------------------------------------
# periodic-seam void merging across a step boundary
# ----------------------------------------------------------------------
STRIP_IDS = set(range(800, 810))
MID_IDS = set(range(810, 816))


def _seam_steps(seed=11):
    """Two steps: a void wrapping the periodic x seam merges with a
    mid-box void when a corridor opens through the dense matter.

    Step 0: dense matter fills [1.5, 4] and [6, 8.5]; a sparse strip
    spans the seam ([8.5, 10] + [0, 1.5], wrapping through x=0 — one
    component only if periodic adjacency works) and a second sparse slab
    sits at [4, 6].  Step 1: the dense particles inside a corridor
    window are removed, connecting the two voids — the merge must link
    the seam-wrapping component to the mid one.  Surviving particles
    keep their ids, which is what the overlap join runs on.
    """
    rng = np.random.default_rng(seed)
    dense = np.vstack(
        [
            rng.uniform([1.5, 0, 0], [4.0, BOX, BOX], size=(400, 3)),
            rng.uniform([6.0, 0, 0], [8.5, BOX, BOX], size=(400, 3)),
        ]
    )
    strip = np.vstack(
        [
            rng.uniform([0, 0, 0], [1.5, BOX, BOX], size=(5, 3)),
            rng.uniform([8.5, 0, 0], [BOX, BOX, BOX], size=(5, 3)),
        ]
    )
    mid = rng.uniform([4.0, 0, 0], [6.0, BOX, BOX], size=(6, 3))
    pts = np.clip(np.vstack([dense, strip, mid]), 1e-3, BOX - 1e-3)
    ids = np.arange(len(pts), dtype=np.int64)
    corridor = (
        (pts[:, 0] > 1.5)
        & (pts[:, 0] < 4.0)
        & (np.all((pts[:, 1:] > 3.5) & (pts[:, 1:] < 6.5), axis=1))
        & (ids < 800)
    )
    keep1 = ~corridor
    return {0: (pts, ids), 1: (pts[keep1], ids[keep1])}


@pytest.fixture(scope="module")
def seam_merge_case():
    steps = _seam_steps()
    domain = Bounds.cube(BOX)
    vmins, labelings = {}, {}
    for step, (pts, ids) in steps.items():
        tess = tessellate(pts, domain, nblocks=1, ghost=4.0, ids=ids)
        vmins[step] = float(np.quantile(tess.volumes(), 0.95))
        labelings[step] = connected_components(tess, vmin=vmins[step])
    return steps, vmins, labelings


def _labels_of(labeling, id_set):
    return {
        int(l)
        for s, l in zip(labeling.site_ids, labeling.labels)
        if int(s) in id_set
    }


def test_seam_void_merges_across_step_boundary(seam_merge_case):
    _, _, labelings = seam_merge_case
    strip0 = _labels_of(labelings[0], STRIP_IDS)
    mid0 = _labels_of(labelings[0], MID_IDS)
    # Step 0: one seam-wrapping void, separate from the mid void(s).
    assert len(strip0) == 1 and mid0 and not (strip0 & mid0)
    # Step 1: the corridor joins them into one component.
    strip1 = _labels_of(labelings[1], STRIP_IDS)
    mid1 = _labels_of(labelings[1], MID_IDS)
    assert len(strip1) == 1 and strip1 & mid1

    tree = track_components(labelings)
    merges = [e for e in tree.events_at(1) if e.kind == "merge"]
    assert any(
        strip0 <= set(e.labels_from) and mid0 & set(e.labels_from)
        for e in merges
    ), f"no merge linking seam void {strip0} with mid {mid0}: {merges}"


def _seam_tracking_worker(comm, steps, decomp, vmins):
    """One rank: tessellate + label each step distributed, restrict to the
    rank's own block rows, and link across steps."""
    labelings = {}
    for step, (pts, ids) in steps.items():
        mine = decomp.locate(pts) == comm.rank
        block, _, _ = tessellate_distributed(
            comm, decomp, pts[mine], ids[mine], ghost=4.0
        )
        glab = connected_components_distributed(
            comm, block, vmin=vmins[step]
        )
        labelings[step] = local_labeling(
            glab, np.asarray(block.site_ids, dtype=np.int64)
        )
    return track_components_distributed(comm, labelings)


@pytest.mark.parametrize("exec_backend", ["thread", "process"])
@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_seam_merge_distributed_matches_serial(
    seam_merge_case, nranks, exec_backend
):
    steps, vmins, labelings = seam_merge_case
    ref = track_components(labelings)
    decomp = Decomposition.regular(Bounds.cube(BOX), nranks, periodic=True)
    trees = run_parallel(
        nranks,
        _seam_tracking_worker,
        steps,
        decomp,
        vmins,
        backend=exec_backend,
    )
    for tree in trees:
        assert tree == ref


# ----------------------------------------------------------------------
# in situ tool: invalid-cell masking, observe counters, kill-and-resume
# ----------------------------------------------------------------------
class _StubSim:
    """Bare sim stand-in for context-driven serial tool runs."""

    recovery = None


def test_tool_threshold_masks_invalid_cells(seam_merge_case):
    """Incomplete cells (volume 0/NaN) must not crash or poison the
    quantile-threshold path of the tracking tool."""
    from repro.insitu import TrackingTool

    steps, _, _ = seam_merge_case
    pts0, ids0 = steps[0]
    tess = tessellate(pts0, Bounds.cube(BOX), nblocks=1, ghost=4.0, ids=ids0)
    # Corrupt a few cells the way incomplete distributed cells present.
    tess.blocks[0].volumes[0] = np.nan
    tess.blocks[0].volumes[1] = 0.0
    tess.blocks[0].volumes[2] = -1.0

    clean_vols = tess.volumes()[3:]
    expected_vmin = float(np.quantile(clean_vols, 0.9))

    tool = TrackingTool(vmin_quantile=0.9)
    assert tool._threshold(tess.volumes()) == expected_vmin

    mt = tool.run(_StubSim(), 0, 1.0, None, context={"tessellation": tess})
    assert mt.num_tracks > 0
    bad = {int(tess.blocks[0].site_ids[i]) for i in range(3)}
    tree = mt.to_tree()
    labeled = set()
    for track in tree.tracks:
        labeled.add(track.labels[0])
    # none of the corrupted cells may have been kept
    kept = set(tool._builder._prev.site_ids.tolist())
    assert not (bad & kept)


def test_tool_threshold_all_invalid_keeps_nothing():
    from repro.insitu import TrackingTool

    tool = TrackingTool(vmin_quantile=0.5)
    vols = np.array([np.nan, 0.0, -2.0])
    assert tool._threshold(vols) == float("inf")


def test_tool_emits_observe_counters(seam_merge_case):
    from repro.insitu import TrackingTool

    _, _, labelings = seam_merge_case
    observe.enable()
    try:
        tool = TrackingTool(vmin_quantile=0.9)
        builder = tool._get_builder(_StubSim())
        builder.push(0, labelings[0])
        builder.push(1, labelings[1])
        merges = observe.registry().counter("tracking.merges").value
        assert merges >= 1
    finally:
        observe.disable()
        observe.reset_all()


def _tool_tree_runs(cfg, nranks, backend, state_dir, ckpt_dir=None,
                    resume=False):
    from repro.insitu import run_simulation_with_tools

    fw = {
        "tools": [
            {
                "tool": "tracking",
                "every": 2,
                "params": {"vmin_quantile": 0.8, "state_dir": state_dir},
            }
        ]
    }
    kwargs = {}
    if ckpt_dir is not None:
        kwargs = {
            "checkpoint_dir": ckpt_dir,
            "checkpoint_every": 2,
            "resume": resume,
        }
    return run_simulation_with_tools(
        cfg, fw, nranks=nranks, backend=backend, **kwargs
    )


@pytest.mark.parametrize("exec_backend", ["thread", "process"])
def test_tool_kill_and_resume_bit_identical(tmp_path, exec_backend):
    """A rank killed mid-sequence, then resumed from the last checkpoint,
    must reproduce the uninterrupted merger tree bit for bit — including
    the tracking state carried across the restart."""
    from repro.hacc.simulation import SimulationConfig

    cfg = SimulationConfig(np_side=6, nsteps=8, seed=5)
    ref = _tool_tree_runs(
        cfg, 2, exec_backend, str(tmp_path / "ref_state")
    )

    state = str(tmp_path / "state")
    ckpt = str(tmp_path / "ckpt")
    faults.install(faults.FaultSpec(kill_rank=1, kill_step=5, kill_mode="raise"))
    with pytest.raises(ParallelError):
        _tool_tree_runs(cfg, 2, exec_backend, state, ckpt_dir=ckpt)
    faults.clear()
    # The tool fired (and snapshotted state) at steps 2 and 4 pre-crash.
    assert any(
        f.startswith("tracking_state_") for f in os.listdir(state)
    )

    resumed = _tool_tree_runs(
        cfg, 2, exec_backend, state, ckpt_dir=ckpt, resume=True
    )
    assert resumed.resumed_step == 4
    assert sorted(resumed["tracking"]) == [6, 8]

    final_ref = ref["tracking"][max(ref["tracking"])]
    final_res = resumed["tracking"][max(resumed["tracking"])]
    assert set(final_ref.arrays) == set(final_res.arrays)
    for key in final_ref.arrays:
        np.testing.assert_array_equal(
            final_ref.arrays[key], final_res.arrays[key]
        )


@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_tool_structure_identical_across_rank_counts(tmp_path, nranks):
    """Tool-level cross-rank-count contract: events, track structure and
    sizes are bit-identical; volume histories agree to rounding (cell
    volumes are decomposition-dependent in the last bits)."""
    from repro.hacc.simulation import SimulationConfig

    cfg = SimulationConfig(np_side=6, nsteps=4, seed=3)
    ref = _tool_tree_runs(cfg, 1, "thread", str(tmp_path / "s1"))
    got = _tool_tree_runs(cfg, nranks, "thread", str(tmp_path / f"s{nranks}"))
    for step in ref["tracking"]:
        t_ref = ref["tracking"][step].to_tree()
        t_got = got["tracking"][step].to_tree()
        assert t_got.events == t_ref.events
        assert len(t_got.tracks) == len(t_ref.tracks)
        for a, b in zip(t_got.tracks, t_ref.tracks):
            assert a.steps == b.steps
            assert a.labels == b.labels
            assert a.sizes == b.sizes
            np.testing.assert_allclose(a.volumes, b.volumes, rtol=1e-9)
