"""Tests for the top-level package facade and public API surface."""

import importlib

import pytest

import repro


class TestLazyFacade:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_eager_exports(self):
        from repro import Bounds, run_parallel

        assert Bounds.cube(1.0).volume == 1.0
        assert run_parallel(1, lambda c: c.size) == [1]

    def test_lazy_tessellate(self):
        assert repro.tessellate is importlib.import_module("repro.core").tessellate
        assert repro.Tessellation is importlib.import_module(
            "repro.core"
        ).Tessellation

    def test_lazy_hacc(self):
        assert repro.HACCSimulation is importlib.import_module(
            "repro.hacc"
        ).HACCSimulation
        assert repro.SimulationConfig is importlib.import_module(
            "repro.hacc"
        ).SimulationConfig

    def test_lazy_insitu(self):
        assert repro.CosmologyToolsFramework is importlib.import_module(
            "repro.insitu"
        ).CosmologyToolsFramework

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_symbol


class TestPublicSurfaces:
    @pytest.mark.parametrize(
        "module",
        ["repro.diy", "repro.hacc", "repro.geometry", "repro.core",
         "repro.analysis", "repro.insitu"],
    )
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert getattr(mod, name) is not None, f"{module}.{name}"

    def test_docstrings_on_public_callables(self):
        """Every public function/class carries a docstring."""
        for module in (
            "repro.diy", "repro.hacc", "repro.geometry", "repro.core",
            "repro.analysis", "repro.insitu",
        ):
            mod = importlib.import_module(module)
            for name in mod.__all__:
                obj = getattr(mod, name)
                if callable(obj):
                    assert obj.__doc__, f"{module}.{name} lacks a docstring"
