"""Tests for the thread-SPMD communicator (repro.diy.comm)."""

import numpy as np
import pytest

from repro.diy.comm import (
    ANY_SOURCE,
    ANY_TAG,
    ParallelError,
    run_parallel,
)


class TestRunParallel:
    def test_serial_runs_inline(self):
        def f(comm):
            assert comm.rank == 0 and comm.size == 1
            return "ok"

        assert run_parallel(1, f) == ["ok"]

    def test_results_in_rank_order(self):
        results = run_parallel(4, lambda comm: comm.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_extra_args_forwarded(self):
        def f(comm, a, b=0):
            return a + b + comm.rank

        assert run_parallel(2, f, 5, b=2) == [7, 8]

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            run_parallel(0, lambda comm: None)

    def test_exception_propagates_with_rank(self):
        def f(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()  # others wait; must be released by the abort

        with pytest.raises(ParallelError) as exc:
            run_parallel(4, f)
        assert exc.value.rank == 2
        assert isinstance(exc.value.original, ValueError)

    def test_exception_unblocks_pending_recv(self):
        def f(comm):
            if comm.rank == 0:
                raise RuntimeError("early death")
            comm.recv(source=0, tag=9)  # never sent

        with pytest.raises(ParallelError) as exc:
            run_parallel(2, f)
        assert exc.value.rank == 0

    def test_mpi4py_spellings(self):
        def f(comm):
            return (comm.Get_rank(), comm.Get_size())

        assert run_parallel(3, f) == [(0, 3), (1, 3), (2, 3)]


class TestPointToPoint:
    def test_send_recv_pairwise(self):
        def f(comm):
            peer = comm.size - 1 - comm.rank
            comm.send(("hello", comm.rank), dest=peer, tag=7)
            msg, src = comm.recv(source=peer, tag=7)
            assert msg == "hello" and src == peer
            return True

        assert all(run_parallel(4, f))

    def test_message_order_preserved(self):
        def f(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=3)
                return None
            return [comm.recv(source=0, tag=3) for _ in range(20)]

        assert run_parallel(2, f)[1] == list(range(20))

    def test_tag_matching(self):
        def f(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            # Receive out of send order by tag.
            b = comm.recv(source=0, tag=2)
            a = comm.recv(source=0, tag=1)
            return (a, b)

        assert run_parallel(2, f)[1] == ("a", "b")

    def test_any_source_any_tag(self):
        def f(comm):
            if comm.rank == 0:
                got = {comm.recv(ANY_SOURCE, ANY_TAG) for _ in range(comm.size - 1)}
                return got
            comm.send(comm.rank, dest=0, tag=comm.rank)
            return None

        assert run_parallel(4, f)[0] == {1, 2, 3}

    def test_send_to_invalid_rank(self):
        def f(comm):
            comm.send(1, dest=5)

        with pytest.raises(ParallelError):
            run_parallel(2, f)

    def test_numpy_payloads(self):
        def f(comm):
            if comm.rank == 0:
                comm.send(np.arange(10.0), dest=1, tag=0)
                return None
            arr = comm.recv(source=0, tag=0)
            return float(arr.sum())

        assert run_parallel(2, f)[1] == 45.0


class TestCollectives:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_bcast(self, n):
        def f(comm):
            data = {"k": 42} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        assert run_parallel(n, f) == [{"k": 42}] * n

    def test_bcast_nonzero_root(self):
        def f(comm):
            return comm.bcast(comm.rank if comm.rank == 2 else None, root=2)

        assert run_parallel(4, f) == [2, 2, 2, 2]

    def test_gather(self):
        def f(comm):
            return comm.gather(comm.rank**2, root=0)

        out = run_parallel(4, f)
        assert out[0] == [0, 1, 4, 9]
        assert out[1] is None

    def test_allgather(self):
        def f(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        assert run_parallel(3, f) == [["a", "b", "c"]] * 3

    def test_scatter(self):
        def f(comm):
            objs = [i * 100 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        assert run_parallel(4, f) == [0, 100, 200, 300]

    def test_scatter_wrong_length_raises(self):
        def f(comm):
            return comm.scatter([1] if comm.rank == 0 else None, root=0)

        with pytest.raises(ParallelError):
            run_parallel(2, f)

    def test_reduce_default_sum(self):
        def f(comm):
            return comm.reduce(comm.rank + 1, root=0)

        assert run_parallel(4, f)[0] == 10

    def test_allreduce_custom_op(self):
        def f(comm):
            return comm.allreduce(comm.rank + 1, op=max)

        assert run_parallel(5, f) == [5] * 5

    def test_exscan(self):
        def f(comm):
            return comm.exscan(comm.rank + 1)

        # sizes 1,2,3,4 -> offsets None,1,3,6
        assert run_parallel(4, f) == [None, 1, 3, 6]

    def test_alltoall(self):
        def f(comm):
            objs = [(comm.rank, dst) for dst in range(comm.size)]
            return comm.alltoall(objs)

        out = run_parallel(3, f)
        for r, row in enumerate(out):
            assert row == [(src, r) for src in range(3)]

    def test_alltoall_wrong_length(self):
        def f(comm):
            return comm.alltoall([1, 2, 3])  # size is 2

        with pytest.raises(ParallelError):
            run_parallel(2, f)

    def test_barrier_many_rounds(self):
        def f(comm):
            acc = 0
            for i in range(10):
                acc = comm.allreduce(acc + 1, op=max)
                comm.barrier()
            return acc

        # Repeated collectives on a reusable barrier must not wedge.
        assert run_parallel(4, f) == [10] * 4

    def test_collectives_interleaved_with_p2p(self):
        def f(comm):
            comm.send(comm.rank, dest=(comm.rank + 1) % comm.size, tag=0)
            total = comm.allreduce(comm.rank)
            left = comm.recv(source=(comm.rank - 1) % comm.size, tag=0)
            return (total, left)

        out = run_parallel(4, f)
        assert [t for t, _ in out] == [6, 6, 6, 6]
        assert [l for _, l in out] == [3, 0, 1, 2]
