"""Tests for the Delaunay-direct flat Voronoi engine (PR 7).

The engine (:class:`repro.geometry.voronoi_delaunay.DelaunayVoronoi`)
must be indistinguishable from the scipy-Voronoi flat engine
(:class:`repro.geometry.voronoi_flat.FlatVoronoi`) at its interface:
identical complete masks, identical adjacency edge sets, and
volumes/areas matching to 1e-9 relative — on clean Poisson inputs, on
degenerate inputs (lattices, cocircular rings, coplanar/collinear sets,
duplicates), with and without the native C kernels, and end-to-end
through :func:`repro.core.tessellate.tessellate` at several rank counts
on both execution backends.
"""

import numpy as np
import pytest

from repro import _native
from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.diy.decomposition import Decomposition
from repro.core.delaunay_mode import dual_distributed, tessellate_delaunay
from repro.core.tessellate import tessellate
from repro.geometry.voronoi_cells import voronoi_cells_clip
from repro.geometry.voronoi_delaunay import DelaunayVoronoi, tet_circumcenters
from repro.geometry.voronoi_flat import FlatVoronoi


def poisson(n, size, seed):
    return np.random.default_rng(seed).uniform(0, size, size=(n, 3))


def edge_set(engine):
    return set(map(tuple, np.sort(engine.ridge_sites, axis=1).tolist()))


def assert_engines_agree(pts, box):
    """Full interface parity between the two flat engines."""
    dv = DelaunayVoronoi(pts, box)
    fv = FlatVoronoi(pts, box)
    np.testing.assert_array_equal(dv.complete, fv.complete)
    assert edge_set(dv) == edge_set(fv)
    done = dv.complete
    np.testing.assert_allclose(dv.volumes[done], fv.volumes[done], rtol=1e-9)
    np.testing.assert_allclose(dv.areas[done], fv.areas[done], rtol=1e-9)
    # Per-cell ridge sets (ids differ between engines; compare by the
    # site pair each ridge separates).
    for s in np.flatnonzero(done)[::7]:
        got = sorted(
            tuple(np.sort(dv.ridge_sites[r]).tolist())
            for r in dv.cell_ridge_ids(int(s))
        )
        want = sorted(
            tuple(np.sort(fv.ridge_sites[r]).tolist())
            for r in fv.cell_ridge_ids(int(s))
        )
        assert got == want
    return dv, fv


class TestStructure:
    def test_csr_consistency(self):
        pts = poisson(200, 10.0, 0)
        dv = DelaunayVoronoi(pts, Bounds.cube(10.0))
        assert np.all(np.diff(dv.ridge_offsets) >= 3)
        assert dv.ridge_offsets[-1] == len(dv.ridge_flat)
        assert len(dv.ridge_sites) == dv.num_ridges
        assert len(dv.ridge_areas) == dv.num_ridges
        assert dv.ridge_sites.dtype == np.int64
        assert dv.ridge_flat.dtype == np.int64

    def test_cell_ridges_index_both_sides(self):
        pts = poisson(150, 8.0, 1)
        dv = DelaunayVoronoi(pts, Bounds.cube(8.0))
        seen = {}
        for s in range(dv.num_sites):
            for r in dv.cell_ridge_ids(s):
                seen.setdefault(int(r), []).append(s)
        for r, sites in seen.items():
            assert sorted(sites) == sorted(dv.ridge_sites[r].tolist())

    def test_ridge_cycles_lie_on_bisectors(self):
        pts = poisson(100, 8.0, 2)
        dv = DelaunayVoronoi(pts, Bounds.cube(8.0))
        for r in range(0, dv.num_ridges, 50):
            cyc = dv.ridge_cycle(r)
            assert len(cyc) >= 3
            v = dv.vertices[cyc]
            p, q = dv.ridge_sites[r]
            axis = pts[q] - pts[p]
            axis = axis / np.linalg.norm(axis)
            mid = 0.5 * (pts[p] + pts[q])
            d = (v - mid) @ axis
            assert np.max(np.abs(d)) < 1e-8

    def test_circumcenters_equidistant(self):
        pts = poisson(120, 6.0, 3)
        from scipy.spatial import Delaunay

        tri = Delaunay(pts)
        tets = tri.simplices.astype(np.int64)
        centers = tet_circumcenters(pts, tets)
        for k in range(4):
            d = pts[tets[:, k]] - centers
            r = np.sqrt(np.einsum("ij,ij->i", d, d))
            if k == 0:
                r0 = r
            else:
                np.testing.assert_allclose(r, r0, rtol=1e-6)

    def test_mesh_property_roundtrip(self):
        pts = poisson(200, 8.0, 4)
        dv = DelaunayVoronoi(pts, Bounds.cube(8.0))
        mesh = dv.mesh
        assert mesh.tetrahedra.shape == (dv.num_tets, 4)
        assert mesh.neighbors.shape == (dv.num_tets, 4)
        # Tets tile the convex hull: volumes all positive at generic sites.
        assert np.all(mesh.volumes() > 0)


class TestParity:
    @pytest.mark.parametrize("seed", (0, 1, 2, 3))
    def test_poisson_parity(self, seed):
        pts = poisson(250, 10.0, seed)
        assert_engines_agree(pts, Bounds.cube(10.0))

    @pytest.mark.parametrize("seed", (0, 5))
    def test_agrees_with_clip_oracle(self, seed):
        pts = poisson(180, 9.0, seed)
        box = Bounds.cube(9.0)
        dv = DelaunayVoronoi(pts, box)
        cells = voronoi_cells_clip(pts, box)
        for s, cell in enumerate(cells):
            if dv.complete[s] and cell.complete:
                assert dv.volumes[s] == pytest.approx(cell.volume, rel=1e-9)


class TestDegenerate:
    """Property tests on inputs that stress qhull's degeneracy handling."""

    def test_lattice(self):
        # Perfect cubic lattice: every site cospherical with its
        # neighbors, maximally degenerate circumspheres.
        side = np.arange(6, dtype=float) + 0.5
        g = np.meshgrid(side, side, side, indexing="ij")
        pts = np.column_stack([a.ravel() for a in g])
        assert_engines_agree(pts, Bounds.cube(6.0))

    def test_cocircular_ring(self):
        rng = np.random.default_rng(11)
        t = np.linspace(0, 2 * np.pi, 24, endpoint=False)
        ring = np.column_stack(
            [2 + np.cos(t), 2 + np.sin(t), np.full_like(t, 2.0)]
        )
        poles = np.array([[2.0, 2.0, 0.5], [2.0, 2.0, 3.5]])
        extra = rng.uniform(0, 4, size=(40, 3))
        pts = np.concatenate([ring, poles, extra])
        assert_engines_agree(pts, Bounds.cube(4.0))

    def test_duplicates(self):
        rng = np.random.default_rng(12)
        base = rng.uniform(0, 8, size=(100, 3))
        pts = np.concatenate([base, base[::10]])  # 10 exact duplicates
        # Which member of a coincident pair qhull keeps is its choice;
        # the contract is only that both engines make the *same* choice
        # (assert_engines_agree compares the full complete masks).
        dv, fv = assert_engines_agree(pts, Bounds.cube(8.0))
        np.testing.assert_allclose(dv.volumes, fv.volumes, rtol=1e-9)

    def test_coplanar_all_incomplete(self):
        rng = np.random.default_rng(13)
        pts = rng.uniform(0, 5, size=(80, 3))
        pts[:, 2] = 2.5
        dv = DelaunayVoronoi(pts, Bounds.cube(5.0))
        fv = FlatVoronoi(pts, Bounds.cube(5.0))
        assert not dv.complete.any()
        assert not fv.complete.any()
        assert dv.used_fallback

    def test_collinear_all_incomplete(self):
        pts = np.column_stack([
            np.linspace(0.5, 4.5, 40),
            np.full(40, 2.0),
            np.full(40, 2.0),
        ])
        dv = DelaunayVoronoi(pts, Bounds.cube(5.0))
        assert not dv.complete.any()

    def test_tiny_inputs(self):
        box = Bounds.cube(4.0)
        for n in (1, 2, 4):
            pts = poisson(n, 4.0, n)
            dv = DelaunayVoronoi(pts, box)
            assert dv.num_sites == n
            assert dv.num_ridges == 0
            assert not dv.complete.any()


class TestNativeFallback:
    def test_loader_reports_state(self):
        # Whichever way this host resolved, the two accessors agree.
        if _native.available():
            assert _native.build_error() is None
        else:
            assert _native.build_error()

    def test_numpy_fallback_parity(self, monkeypatch):
        pts = poisson(300, 10.0, 21)
        box = Bounds.cube(10.0)
        with_native = DelaunayVoronoi(pts, box)
        monkeypatch.setattr(_native, "_lib", None)
        monkeypatch.setattr(_native, "_tried", True)
        assert not _native.available()
        without = DelaunayVoronoi(pts, box)
        np.testing.assert_array_equal(with_native.complete, without.complete)
        np.testing.assert_array_equal(
            with_native.ridge_offsets, without.ridge_offsets
        )
        np.testing.assert_array_equal(
            with_native.ridge_flat, without.ridge_flat
        )
        # Native and NumPy paths sum ring areas in different orders, so
        # bitwise equality is not expected — 1e-9 relative is the contract.
        np.testing.assert_allclose(
            with_native.ridge_areas, without.ridge_areas, rtol=1e-9
        )
        np.testing.assert_allclose(
            with_native.volumes, without.volumes, rtol=1e-9
        )


class TestTessellateParity:
    @pytest.mark.parametrize("nblocks", (1, 2, 4))
    @pytest.mark.parametrize("exec_backend", ("thread", "process"))
    def test_delaunay_matches_qhull(self, nblocks, exec_backend):
        pts = poisson(400, 10.0, 31)
        domain = Bounds.cube(10.0)
        kw = dict(nblocks=nblocks, exec_backend=exec_backend)
        a = tessellate(pts, domain, backend="delaunay", **kw)
        b = tessellate(pts, domain, backend="qhull", **kw)
        assert a.num_cells == b.num_cells
        ia = np.argsort(a.site_ids())
        ib = np.argsort(b.site_ids())
        np.testing.assert_array_equal(a.site_ids()[ia], b.site_ids()[ib])
        np.testing.assert_allclose(
            a.volumes()[ia], b.volumes()[ib], rtol=1e-9
        )
        np.testing.assert_allclose(a.areas()[ia], b.areas()[ib], rtol=1e-9)

    def test_culling_parity(self):
        pts = poisson(500, 10.0, 32)
        domain = Bounds.cube(10.0)
        vmin = 1000.0 / 500.0 * 0.5
        a = tessellate(pts, domain, nblocks=2, backend="delaunay", vmin=vmin)
        b = tessellate(pts, domain, nblocks=2, backend="qhull", vmin=vmin)
        assert a.num_cells == b.num_cells
        np.testing.assert_array_equal(
            np.sort(a.site_ids()), np.sort(b.site_ids())
        )


class TestObserveCounters:
    def test_geom_counters_recorded(self):
        from repro import observe

        observe.enable()
        try:
            observe.registry().reset()
            pts = poisson(300, 10.0, 51)
            tessellate(pts, Bounds.cube(10.0), nblocks=2)
            counters = observe.registry().as_dict()["counters"]
            assert counters["geom.tets"] > 0
            assert counters["geom.finite_ridges"] > 0
            assert counters["geom.complete_cells"] == 300
        finally:
            observe.disable()
            observe.registry().reset()

    def test_degenerate_counters_recorded(self):
        from repro import observe
        from repro.core.tessellate import _observe_geometry

        observe.enable()
        try:
            observe.registry().reset()
            # A coplanar slab *through tessellate* gains periodic ghost
            # images and becomes 3D, so qhull succeeds but emits many
            # cospherical slivers — the dropped-ridge counter fires.
            pts = poisson(60, 5.0, 52)
            pts[:, 2] = 2.5
            tessellate(pts, Bounds.cube(5.0), nblocks=1)
            counters = observe.registry().as_dict()["counters"]
            assert counters.get("geom.degenerate_ridges_dropped", 0) > 0
            # The raw engine on the same slab (no ghosts) has no 3D hull
            # at all and takes the joggle fallback.
            dv = DelaunayVoronoi(pts, Bounds.cube(5.0))
            assert dv.used_fallback
            _observe_geometry(dv, len(pts))
            counters = observe.registry().as_dict()["counters"]
            assert counters.get("geom.degenerate_fallbacks", 0) >= 1
        finally:
            observe.disable()
            observe.registry().reset()


class TestDualDistributed:
    @pytest.mark.parametrize("nblocks", (1, 2))
    def test_one_triangulation_both_outputs(self, nblocks):
        pts = poisson(350, 10.0, 41)
        domain = Bounds.cube(10.0)
        decomp = Decomposition.regular(domain, nblocks, periodic=True)
        ids = np.arange(len(pts), dtype=np.int64)

        def worker(comm):
            mine = decomp.locate(pts) == comm.rank
            return dual_distributed(
                comm, decomp, pts[mine], ids[mine], ghost=4.0
            )

        results = run_parallel(nblocks, worker)
        vcells = sum(b.num_cells for b, _ in results)
        assert vcells == len(pts)
        vol = sum(float(b.volumes.sum()) for b, _ in results)
        assert vol == pytest.approx(domain.volume, rel=1e-9)

        # The dual tet soup matches the standalone Delaunay mode exactly.
        ref = tessellate_delaunay(pts, domain, nblocks=nblocks, ghost=4.0)
        tets = np.concatenate([d.tetrahedra for _, d in results])
        tets = np.sort(tets, axis=1)
        tets = tets[np.lexsort(tets.T[::-1])]
        np.testing.assert_array_equal(tets, ref.all_tetrahedra())
