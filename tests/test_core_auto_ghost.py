"""Tests for automatic ghost-size determination (paper §V)."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.core import match_tessellations, tessellate
from repro.core.auto_ghost import certify_block, tessellate_auto


class TestCertification:
    def test_certified_cells_match_reference(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 12, size=(800, 3))
        domain = Bounds.cube(12.0)
        tess = tessellate(pts, domain, nblocks=4, ghost=3.0)
        from repro.diy.decomposition import Decomposition

        decomp = Decomposition.regular(domain, 4, periodic=True)
        for block in tess.blocks:
            mask = certify_block(block, decomp.block(block.gid).ghost_bounds(3.0))
            assert mask.any()  # interior cells certify at a healthy ghost

    def test_small_ghost_fails_certification(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 12, size=(400, 3))
        domain = Bounds.cube(12.0)
        tess = tessellate(pts, domain, nblocks=4, ghost=0.5)
        from repro.diy.decomposition import Decomposition

        decomp = Decomposition.regular(domain, 4, periodic=True)
        uncertified = 0
        for block in tess.blocks:
            mask = certify_block(block, decomp.block(block.gid).ghost_bounds(0.5))
            uncertified += int((~mask).sum())
        assert uncertified > 0

    def test_empty_block(self):
        from repro.core.data_model import VoronoiBlock

        b = VoronoiBlock.from_cells(0, Bounds.cube(1.0), [])
        assert len(certify_block(b, Bounds.cube(1.0))) == 0


class TestAutoTessellate:
    def test_converges_and_matches_reference(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 12, size=(900, 3))
        domain = Bounds.cube(12.0)
        auto, ghost, iters = tessellate_auto(
            pts, domain, nblocks=4, initial_ghost=0.5
        )
        assert iters > 1  # the deliberately tiny start was insufficient
        assert auto.num_cells == 900
        reference = tessellate(pts, domain, nblocks=1, ghost=5.0)
        m = match_tessellations(auto, reference)
        assert m.accuracy_percent == 100.0

    def test_sufficient_start_converges_immediately(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 10, size=(600, 3))
        auto, ghost, iters = tessellate_auto(
            pts, Bounds.cube(10.0), nblocks=2, initial_ghost=4.0
        )
        assert iters == 1
        assert ghost == 4.0
        assert auto.num_cells == 600

    def test_default_initial_ghost(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 8, size=(300, 3))
        auto, ghost, iters = tessellate_auto(pts, Bounds.cube(8.0), nblocks=2)
        assert auto.num_cells == 300
        assert ghost <= 4.0  # capped at half the box

    def test_clustered_data_needs_bigger_ghost(self):
        """Sparse void regions force larger ghosts than the mean spacing
        heuristic would pick — the scenario motivating auto sizing."""
        rng = np.random.default_rng(5)
        cluster = rng.normal(3.0, 0.3, size=(500, 3)) % 12.0
        sparse = rng.uniform(0, 12.0, size=(60, 3))
        pts = np.vstack([cluster, sparse])
        domain = Bounds.cube(12.0)
        auto, ghost, iters = tessellate_auto(
            pts, domain, nblocks=4, initial_ghost=1.0
        )
        assert auto.num_cells == len(pts)
        assert ghost > 1.0  # had to grow
        reference = tessellate(pts, domain, nblocks=1, ghost=5.9)
        m = match_tessellations(auto, reference)
        assert m.accuracy_percent == 100.0

    def test_invalid_inputs(self):
        pts = np.random.default_rng(6).uniform(0, 4, (50, 3))
        with pytest.raises(NotImplementedError):
            tessellate_auto(pts, Bounds.cube(4.0), periodic=False)
        from repro.diy.comm import run_parallel
        from repro.diy.decomposition import Decomposition
        from repro.core.auto_ghost import tessellate_auto_distributed

        decomp = Decomposition.regular(Bounds.cube(4.0), 1, periodic=True)

        def worker(comm):
            return tessellate_auto_distributed(
                comm, decomp, pts, np.arange(50), initial_ghost=0.0
            )

        with pytest.raises(Exception):
            run_parallel(1, worker)

    def test_volume_threshold_applies_after_certification(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 10, size=(500, 3))
        domain = Bounds.cube(10.0)
        from repro.diy.comm import run_parallel
        from repro.diy.decomposition import Decomposition
        from repro.core.auto_ghost import tessellate_auto_distributed

        full = tessellate(pts, domain, nblocks=1, ghost=4.0)
        vmin = float(np.quantile(full.volumes(), 0.5))
        decomp = Decomposition.regular(domain, 2, periodic=True)
        ids = np.arange(500, dtype=np.int64)

        def worker(comm):
            mine = decomp.locate(pts) == comm.rank
            return tessellate_auto_distributed(
                comm, decomp, pts[mine], ids[mine],
                initial_ghost=1.0, vmin=vmin,
            )

        results = run_parallel(2, worker)
        kept = sum(r.block.num_cells for r in results)
        expect = int((full.volumes() >= vmin).sum())
        assert kept == expect
        for r in results:
            assert r.certified
            assert np.all(r.block.volumes >= vmin)
