"""Persistent rank-pool tests: reuse, invalidation, and child hygiene.

The process backend's :class:`~repro.diy.process_backend.RankPool` keeps
forked rank workers (and their shm segments and pipe mesh) alive across
``run_parallel`` regions.  These tests pin the lease contract: the same
worker processes serve consecutive runs with bit-identical results, any
failure invalidates the pool and sweeps its shared memory, unpicklable
tasks fall back to fresh forks, and no exit path — including a failed
spawn — leaves live child processes behind.
"""

import os

import numpy as np
import pytest

from repro.diy.comm import ParallelError, run_parallel
from repro.diy.process_backend import (
    pool_counters,
    pool_enabled,
    shutdown_pool,
)


@pytest.fixture(autouse=True)
def _fresh_pool_state():
    """Each test starts and ends without live pool workers."""
    shutdown_pool()
    yield
    shutdown_pool()


def _repro_segments() -> set:
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return set()
    return {n for n in names if n.startswith("repro-")}


# Module-level workers: picklable by reference, so the pool path engages.
def _pid_worker(comm):
    return os.getpid()


def _collective_worker(comm, seed):
    """Collectives + large p2p: the traffic mix of a tessellation step."""
    rng = np.random.default_rng(seed + comm.rank)
    big = rng.standard_normal(20_000)  # > SHM_THRESHOLD, rides shm
    peer = (comm.rank + 1) % comm.size
    comm.send(big, dest=peer, tag=1)
    echoed = comm.recv(source=(comm.rank - 1) % comm.size, tag=1)
    total = comm.allreduce(float(big.sum()))
    gathered = comm.gather(comm.rank * 2, root=0)
    comm.barrier()
    return float(echoed.sum()), total, gathered, os.getpid()


def _raise_on_rank1(comm):
    if comm.rank == 1:
        raise ValueError("injected failure")
    comm.barrier()


class TestPoolReuse:
    @pytest.mark.parametrize("nranks", (2, 4))
    def test_same_pids_serve_consecutive_runs(self, nranks):
        first = run_parallel(nranks, _pid_worker, backend="process")
        second = run_parallel(nranks, _pid_worker, backend="process")
        assert first == second
        assert len(set(first)) == nranks
        assert os.getpid() not in first

    def test_reuse_counters_progress(self):
        before = dict(pool_counters)
        run_parallel(2, _pid_worker, backend="process")
        run_parallel(2, _pid_worker, backend="process")
        assert pool_counters["forks"] == before["forks"] + 2
        assert pool_counters["runs_leased"] == before["runs_leased"] + 2
        assert pool_counters["runs_reused"] == before["runs_reused"] + 1

    @pytest.mark.parametrize("nranks", (1, 2, 4))
    def test_pooled_results_identical_to_fresh_fork(self, nranks, monkeypatch):
        assert pool_enabled()
        pooled = run_parallel(nranks, _collective_worker, 9, backend="process")
        pooled2 = run_parallel(nranks, _collective_worker, 9, backend="process")
        shutdown_pool()
        monkeypatch.setenv("REPRO_POOL", "0")
        assert not pool_enabled()
        fresh = run_parallel(nranks, _collective_worker, 9, backend="process")
        # Bit-identical payloads; only the worker PIDs may differ.
        assert [r[:3] for r in pooled] == [r[:3] for r in fresh]
        assert [r[:3] for r in pooled] == [r[:3] for r in pooled2]

    def test_many_consecutive_leases_with_collectives(self):
        """Regression: task-local mailbox state must be cleared *before* a
        rank reports its result — clearing after let a fast peer's first
        message of the next lease be dropped, deadlocking the pool on the
        second or third reuse."""
        pids = None
        for i in range(6):
            results = run_parallel(
                4, _collective_worker, i, backend="process", recv_timeout=60
            )
            totals = {r[1] for r in results}
            assert len(totals) == 1  # allreduce agreed on every rank
            assert results[0][2] == [0, 2, 4, 6]
            run_pids = sorted(r[3] for r in results)
            assert pids is None or run_pids == pids
            pids = run_pids

    def test_shm_segments_persist_across_leases_and_die_with_pool(self):
        baseline = _repro_segments()
        run_parallel(2, _collective_worker, 1, backend="process")
        after_first = _repro_segments() - baseline
        assert after_first  # the big sends allocated pooled segments
        run_parallel(2, _collective_worker, 2, backend="process")
        after_second = _repro_segments() - baseline
        # Pool reuse keeps the first lease's segments alive for recycling.
        assert after_first <= after_second
        shutdown_pool()
        assert _repro_segments() == baseline


class TestPoolInvalidation:
    def test_failure_invalidates_then_next_run_reforks(self):
        before = pool_counters["invalidations"]
        healthy = run_parallel(2, _pid_worker, backend="process")
        with pytest.raises(ParallelError) as exc:
            run_parallel(2, _raise_on_rank1, backend="process")
        assert exc.value.rank == 1
        assert pool_counters["invalidations"] == before + 1
        replacement = run_parallel(2, _pid_worker, backend="process")
        assert set(healthy).isdisjoint(replacement)

    def test_invalidation_sweeps_pool_segments(self):
        baseline = _repro_segments()
        run_parallel(2, _collective_worker, 3, backend="process")
        assert _repro_segments() - baseline
        with pytest.raises(ParallelError):
            run_parallel(2, _raise_on_rank1, backend="process")
        assert _repro_segments() == baseline

    def test_unpicklable_task_falls_back_to_fresh_fork(self):
        box = []  # closing over a live list defeats pickle

        def worker(comm):
            box.append(comm.rank)
            return os.getpid()

        before = dict(pool_counters)
        first = run_parallel(2, worker, backend="process")
        second = run_parallel(2, worker, backend="process")
        assert pool_counters["fallback_runs"] == before["fallback_runs"] + 2
        assert pool_counters["runs_leased"] == before["runs_leased"]
        # Fresh forks every region: distinct worker processes each time.
        assert set(first).isdisjoint(second)


class TestSpawnFailure:
    """A failed fork must not strand the ranks already started."""

    def _arm_failing_spawn(self, monkeypatch, fail_at: int):
        from repro.diy import process_backend

        spawned = []
        original = process_backend._spawn_rank

        def failing(ctx, target, args, rank):
            if len(spawned) == fail_at:
                raise OSError("fork: resource temporarily unavailable")
            proc = original(ctx, target, args, rank)
            spawned.append(proc)
            return proc

        monkeypatch.setattr(process_backend, "_spawn_rank", failing)
        return spawned

    def test_fresh_fork_spawn_failure_leaves_no_children(self, monkeypatch):
        from repro.diy.process_backend import run_parallel_processes

        spawned = self._arm_failing_spawn(monkeypatch, fail_at=2)
        with pytest.raises(OSError, match="fork"):
            run_parallel_processes(
                4, _pid_worker, (), {}, use_pool=False
            )
        assert len(spawned) == 2
        for proc in spawned:
            proc.join(timeout=10.0)
            assert not proc.is_alive()
            assert proc.exitcode is not None

    def test_pool_spawn_failure_leaves_no_children(self, monkeypatch):
        spawned = self._arm_failing_spawn(monkeypatch, fail_at=2)
        with pytest.raises(OSError, match="fork"):
            run_parallel(4, _pid_worker, backend="process")
        assert len(spawned) == 2
        for proc in spawned:
            proc.join(timeout=10.0)
            assert not proc.is_alive()
        # The half-built pool must not be handed to the next caller: with
        # the seam restored the next run forks a full healthy pool.
        monkeypatch.undo()
        pids = run_parallel(4, _pid_worker, backend="process")
        assert len(set(pids)) == 4


class TestTaskWire:
    def test_fault_spec_ships_with_pooled_task(self):
        """Pool workers forked before the injector was armed must still see
        it: the active FaultSpec rides the task wire."""
        from repro import faults

        run_parallel(2, _pid_worker, backend="process")  # warm the pool
        faults.install(faults.FaultSpec(seed=5, delay_rate=1.0, delay_s=0.0))
        try:
            delayed = run_parallel(2, _delay_probe, backend="process")
        finally:
            faults.clear()
        assert delayed[0] >= 1


def _delay_probe(comm):
    if comm.rank == 0:
        comm.send("x", dest=1, tag=1)
    else:
        comm.recv(source=0, tag=1)
    comm.barrier()
    return comm.stats.msgs_delayed
