"""Fault-injection tests: seeded message faults, rank kills, kill-and-resume.

Exercises :mod:`repro.faults` end to end: deterministic drop/delay decisions,
a rank killed mid-simulation on both execution backends (with bounded
detection on the process backend), and bit-identical resume from the last
checkpoint via :func:`repro.hacc.simulation.run_with_recovery`.
"""

import os
import time

import numpy as np
import pytest

from repro import faults
from repro.diy.comm import ParallelError, run_parallel
from repro.diy.process_backend import RankDiedError
from repro.hacc import HACCSimulation, SimulationConfig, run_with_recovery


@pytest.fixture(autouse=True)
def _clear_faults():
    """Never let an injector leak between tests."""
    yield
    faults.clear()


class TestFaultSpec:
    def test_rejects_bad_rates_and_modes(self):
        with pytest.raises(ValueError):
            faults.FaultSpec(drop_rate=1.5)
        with pytest.raises(ValueError):
            faults.FaultSpec(delay_rate=-0.1)
        with pytest.raises(ValueError):
            faults.FaultSpec(kill_mode="segfault")
        with pytest.raises(ValueError):
            faults.FaultSpec(tear_fraction=2.0)

    def test_install_active_clear(self):
        assert faults.active() is None
        inj = faults.install(faults.FaultSpec(seed=3))
        try:
            assert faults.active() is inj
        finally:
            faults.clear()
        assert faults.active() is None


class TestMessageFaults:
    def test_seeded_drop_decisions_are_deterministic(self):
        """Same seed => same per-rank drop/delay pattern, run after run."""

        def decisions():
            inj = faults.FaultInjector(
                faults.FaultSpec(seed=42, drop_rate=0.3, delay_rate=0.2,
                                 delay_s=0.0)
            )
            return [inj.on_send(rank, dest=(rank + 1) % 2, tag=i)
                    for rank in (0, 1) for i in range(40)]

        assert decisions() == decisions()
        # and a different seed gives a different pattern
        other = faults.FaultInjector(
            faults.FaultSpec(seed=43, drop_rate=0.3, delay_rate=0.2,
                             delay_s=0.0)
        )
        alt = [other.on_send(rank, dest=(rank + 1) % 2, tag=i)
               for rank in (0, 1) for i in range(40)]
        assert alt != decisions()

    def test_dropped_messages_counted_and_absent(self):
        """Receivers learn the surviving count via an (unfaulted) collective
        and drain exactly that many messages — no deadlock, no leftovers."""
        faults.install(faults.FaultSpec(seed=7, drop_rate=0.5))

        def worker(comm):
            n = 30
            if comm.rank == 0:
                for i in range(n):
                    comm.send(i, dest=1, tag=5)
            sent = n - comm.stats.msgs_dropped if comm.rank == 0 else 0
            kept = comm.allreduce(sent)
            if comm.rank == 1:
                got = [comm.recv(source=0, tag=5) for _ in range(kept)]
                assert len(got) == kept
            return comm.stats.msgs_dropped

        dropped = run_parallel(2, worker)
        assert 0 < dropped[0] < 30  # p=0.5 over 30 trials
        assert dropped[1] == 0

    def test_delay_injects_latency(self):
        faults.install(faults.FaultSpec(seed=1, delay_rate=1.0, delay_s=0.05))

        def worker(comm):
            if comm.rank == 0:
                t0 = time.perf_counter()
                comm.send("x", dest=1, tag=9)
                elapsed = time.perf_counter() - t0
                assert elapsed >= 0.05
            else:
                assert comm.recv(source=0, tag=9) == "x"
            return comm.stats.msgs_delayed

        delayed = run_parallel(2, worker)
        assert delayed == [1, 0]


class TestRankKill:
    def test_thread_backend_kill_at_step(self):
        cfg = SimulationConfig(np_side=8, nsteps=4, seed=11)
        faults.install(
            faults.FaultSpec(kill_rank=1, kill_step=3, kill_mode="raise")
        )

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.run()

        with pytest.raises(ParallelError) as exc:
            run_parallel(2, worker)
        assert exc.value.rank == 1
        assert isinstance(exc.value.original, faults.RankKilledError)
        assert "step 3" in str(exc.value.original)

    def test_process_backend_kill_detected_within_bound(self):
        """A child dying via os._exit must surface as ParallelError naming
        the rank well before the full recv timeout would expire."""
        cfg = SimulationConfig(np_side=8, nsteps=4, seed=11)
        faults.install(
            faults.FaultSpec(kill_rank=1, kill_step=2, kill_mode="exit",
                             kill_exitcode=87)
        )

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.run()

        t0 = time.perf_counter()
        with pytest.raises(ParallelError) as exc:
            run_parallel(2, worker, backend="process", recv_timeout=60.0)
        elapsed = time.perf_counter() - t0
        assert exc.value.rank == 1
        assert isinstance(exc.value.original, RankDiedError)
        assert "exit code 87" in str(exc.value.original)
        assert elapsed < 30.0  # bounded detection, not the 60 s recv timeout


def _shm_heavy_sim_worker(comm, cfg):
    """Picklable rank worker (pool path): allocate shm segments, then run a
    simulation the fault injector can kill mid-step."""
    comm.gather(np.full(100_000, float(comm.rank)), root=0)
    sim = HACCSimulation(cfg, comm=comm)
    sim.run()


class TestShmReclaim:
    @staticmethod
    def _repro_segments():
        try:
            names = os.listdir("/dev/shm")
        except OSError:
            return set()
        return {n for n in names if n.startswith("repro-")}

    def test_killed_rank_shm_segments_reclaimed(self):
        """Satellite regression: a rank hard-killed by fault injection never
        unlinks its pooled segments itself — the parent's prefix sweep must,
        or repeated fault-injection runs exhaust /dev/shm."""
        from repro.diy.process_backend import shutdown_pool

        shutdown_pool()
        baseline = self._repro_segments()
        cfg = SimulationConfig(np_side=8, nsteps=4, seed=11)
        for round_no in range(3):
            faults.install(
                faults.FaultSpec(kill_rank=1, kill_step=2, kill_mode="exit")
            )
            with pytest.raises(ParallelError) as exc:
                run_parallel(
                    2, _shm_heavy_sim_worker, cfg,
                    backend="process", recv_timeout=60.0,
                )
            faults.clear()
            assert isinstance(exc.value.original, RankDiedError)
            # Every round's pool (and its /dev/shm segments, including the
            # dead rank's) is reclaimed before the error reaches the caller.
            assert self._repro_segments() == baseline, f"round {round_no}"


class TestKillAndResume:
    CFG = SimulationConfig(np_side=8, nsteps=6, seed=7)

    def _reference(self, nranks):
        def worker(comm):
            sim = HACCSimulation(self.CFG, comm=comm)
            sim.run()
            return sim.local

        return run_parallel(nranks, worker)

    def _recover(self, nranks, backend, ckpt_dir, resume):
        def worker(comm):
            sim = run_with_recovery(
                self.CFG, comm, checkpoint_dir=ckpt_dir,
                checkpoint_every=2, resume=resume,
            )
            return sim.local, sim.recovery.resumed_step

        return run_parallel(nranks, worker, backend=backend)

    @pytest.mark.parametrize("backend,kill_mode", [
        ("thread", "raise"),
        ("process", "exit"),
    ])
    def test_resume_is_bit_identical(self, tmp_path, backend, kill_mode):
        ckpt_dir = str(tmp_path / "ckpts")
        reference = self._reference(2)

        faults.install(
            faults.FaultSpec(kill_rank=1, kill_step=5, kill_mode=kill_mode)
        )
        with pytest.raises(ParallelError):
            self._recover(2, backend, ckpt_dir, resume=False)
        faults.clear()

        # Checkpoints for steps 2 and 4 must have survived the crash.
        names = sorted(os.listdir(ckpt_dir))
        assert names == ["ckpt-000002.ckpt", "ckpt-000004.ckpt"]

        results = self._recover(2, backend, ckpt_dir, resume=True)
        for rank, (local, resumed_step) in enumerate(results):
            assert resumed_step == 4
            ref = reference[rank]
            assert np.array_equal(local.positions, ref.positions)
            assert np.array_equal(local.velocities, ref.velocities)
            assert np.array_equal(local.ids, ref.ids)
