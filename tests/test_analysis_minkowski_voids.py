"""Tests for Minkowski functionals, void finding, and statistics."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.core import tessellate
from repro.analysis.components import ComponentLabeling, connected_components
from repro.analysis.minkowski import minkowski_functionals
from repro.analysis.statistics import (
    cell_density,
    density_contrast,
    histogram,
    volume_range_concentration,
)
from repro.analysis.voids import find_voids, volume_threshold_for_fraction


def uniform_tess(n=400, size=10.0, seed=0, nblocks=1):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, size, size=(n, 3))
    return tessellate(pts, Bounds.cube(size), nblocks=nblocks, ghost=4.0)


class TestMinkowskiSingleCell:
    def _single_cell_functionals(self, tess):
        # Pick one interior cell as its own component.
        sid = int(tess.site_ids()[0])
        lab = ComponentLabeling(
            site_ids=np.asarray([sid]), labels=np.asarray([0])
        )
        return minkowski_functionals(tess, lab)[0], sid

    def test_convex_cell_basics(self):
        tess = uniform_tess(seed=1)
        mk, sid = self._single_cell_functionals(tess)
        i = int(np.flatnonzero(tess.site_ids() == sid)[0])
        assert mk.num_cells == 1
        assert mk.volume == pytest.approx(float(tess.volumes()[i]), rel=1e-9)
        assert mk.surface_area == pytest.approx(float(tess.areas()[i]), rel=1e-9)
        # A single convex polyhedron: sphere-topology boundary, positive
        # curvature, chi = 2, genus 0.
        assert mk.euler_characteristic == 2
        assert mk.genus == 0
        assert mk.mean_curvature > 0

    def test_shapefinders_of_convex_cell(self):
        tess = uniform_tess(seed=2)
        mk, _ = self._single_cell_functionals(tess)
        # For convex bodies T <= B <= L (Sahni et al. ordering).
        assert mk.thickness <= mk.breadth * (1 + 1e-9)
        assert mk.breadth <= mk.length * (1 + 1e-9)
        # And all are of order the cell size.
        r_est = (3 * mk.volume / (4 * np.pi)) ** (1 / 3)
        assert 0.3 * r_est < mk.thickness < 3 * r_est

    def test_cube_analytics(self):
        """A hand-built single-cube 'tessellation' has exact functionals."""
        from repro.core.cell import VoronoiCell
        from repro.core.data_model import VoronoiBlock
        from repro.core.tessellate import Tessellation
        from repro.geometry.polyhedron import ConvexPolyhedron

        box = Bounds.cube(2.0)
        poly = ConvexPolyhedron.from_bounds(box)
        cell = VoronoiCell(
            site_id=0,
            site=np.array([1.0, 1.0, 1.0]),
            vertices=poly.vertices,
            faces=poly.faces,
            neighbor_ids=np.full(6, -1, dtype=np.int64),
            volume=8.0,
            area=24.0,
        )
        block = VoronoiBlock.from_cells(0, box, [cell])
        tess = Tessellation(domain=box, blocks=[block])
        lab = ComponentLabeling(site_ids=np.array([0]), labels=np.array([0]))
        mk = minkowski_functionals(tess, lab)[0]
        assert mk.volume == pytest.approx(8.0)
        assert mk.surface_area == pytest.approx(24.0)
        # Cube of side a: C = (1/2) * 12 edges * a * (pi/2) = 3 pi a.
        assert mk.mean_curvature == pytest.approx(3 * np.pi * 2.0, rel=1e-9)
        assert mk.euler_characteristic == 2
        assert mk.thickness == pytest.approx(1.0)  # 3V/S = a/2... 3*8/24=1
        assert mk.breadth == pytest.approx(24.0 / (6 * np.pi))
        assert mk.length == pytest.approx(6 * np.pi / (4 * np.pi))

    def test_pair_of_adjacent_cells_merges_surface(self):
        tess = uniform_tess(seed=3)
        # Find two adjacent cells.
        block = tess.blocks[0]
        sid_a = int(block.site_ids[0])
        nbs = [n for n in block.neighbors_of_cell(0) if n >= 0]
        sid_b = int(nbs[0])
        lab = ComponentLabeling(
            site_ids=np.asarray(sorted([sid_a, sid_b])), labels=np.asarray([0, 0])
        )
        mk = minkowski_functionals(tess, lab)[0]
        ids = tess.site_ids().tolist()
        va = tess.volumes()[ids.index(sid_a)]
        vb = tess.volumes()[ids.index(sid_b)]
        sa = tess.areas()[ids.index(sid_a)]
        sb = tess.areas()[ids.index(sid_b)]
        assert mk.volume == pytest.approx(va + vb, rel=1e-9)
        # The shared face is interior: S < Sa + Sb.
        assert mk.surface_area < sa + sb - 1e-12
        assert mk.euler_characteristic == 2  # still a topological ball


class TestMinkowskiComponents:
    def test_functionals_for_all_components(self):
        tess = uniform_tess(n=300, seed=4)
        vmin = float(np.quantile(tess.volumes(), 0.55))
        lab = connected_components(tess, vmin=vmin)
        mks = minkowski_functionals(tess, lab)
        assert len(mks) == lab.num_components
        sizes = lab.sizes()
        for mk in mks:
            assert mk.num_cells == sizes[mk.label]
            assert mk.volume > 0
            assert mk.surface_area > 0

    def test_component_volume_additivity(self):
        tess = uniform_tess(n=300, seed=5)
        vmin = float(np.quantile(tess.volumes(), 0.5))
        lab = connected_components(tess, vmin=vmin)
        mks = minkowski_functionals(tess, lab)
        kept = tess.volumes()[tess.volumes() >= vmin]
        assert sum(m.volume for m in mks) == pytest.approx(kept.sum(), rel=1e-9)


class TestVoids:
    def test_default_threshold_rule(self):
        tess = uniform_tess(n=400, seed=6)
        vmin = volume_threshold_for_fraction(tess, 0.1)
        v = tess.volumes()
        assert vmin == pytest.approx(v.min() + 0.1 * (v.max() - v.min()))

    def test_find_voids_returns_sorted(self):
        tess = uniform_tess(n=400, seed=7)
        cat = find_voids(tess, vmin=float(np.quantile(tess.volumes(), 0.6)))
        vols = [v.volume for v in cat.voids]
        assert vols == sorted(vols, reverse=True)
        assert cat.largest().volume == vols[0]
        assert cat.total_volume() == pytest.approx(sum(vols))

    def test_min_cells_filter(self):
        tess = uniform_tess(n=400, seed=8)
        vmin = float(np.quantile(tess.volumes(), 0.8))
        all_cat = find_voids(tess, vmin=vmin, min_cells=1)
        big_cat = find_voids(tess, vmin=vmin, min_cells=3)
        assert big_cat.num_voids <= all_cat.num_voids
        assert all(v.num_cells >= 3 for v in big_cat.voids)

    def test_minkowski_attached(self):
        tess = uniform_tess(n=300, seed=9)
        cat = find_voids(
            tess, vmin=float(np.quantile(tess.volumes(), 0.7)),
            compute_minkowski=True,
        )
        for v in cat.voids:
            assert v.minkowski is not None
            assert v.minkowski.volume == pytest.approx(v.volume, rel=1e-9)

    def test_raising_threshold_reduces_void_material(self):
        """Figure 9 dynamics: higher thresholds keep fewer cells."""
        tess = uniform_tess(n=500, seed=10)
        v = tess.volumes()
        kept_cells = []
        for q in (0.0, 0.5, 0.75, 0.9):
            vmin = float(np.quantile(v, q))
            cat = find_voids(tess, vmin=vmin)
            kept_cells.append(sum(void.num_cells for void in cat.voids))
        assert kept_cells == sorted(kept_cells, reverse=True)

    def test_empty_catalog(self):
        tess = uniform_tess(n=100, seed=11)
        cat = find_voids(tess, vmin=1e9)
        assert cat.num_voids == 0
        with pytest.raises(ValueError):
            cat.largest()


class TestStatistics:
    def test_histogram_moments_gaussian(self):
        rng = np.random.default_rng(0)
        h = histogram(rng.normal(size=200_000), bins=50)
        assert h.skewness == pytest.approx(0.0, abs=0.05)
        assert h.kurtosis == pytest.approx(3.0, abs=0.1)  # Pearson convention
        assert h.counts.sum() + h.n_clipped == h.n_samples

    def test_histogram_range_clipping(self):
        vals = np.array([0.5, 1.0, 1.5, 10.0])
        h = histogram(vals, bins=3, value_range=(0.0, 2.0))
        assert h.counts.sum() == 3
        assert h.n_clipped == 1

    def test_histogram_rows(self):
        h = histogram(np.linspace(0, 1, 100), bins=4, value_range=(0.0, 1.0))
        rows = h.rows()
        assert len(rows) == 4
        assert sum(c for _, c in rows) == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram(np.empty(0))

    def test_cell_density_and_contrast(self):
        v = np.array([1.0, 2.0, 4.0])
        d = cell_density(v)
        np.testing.assert_allclose(d, [1.0, 0.5, 0.25])
        delta = density_contrast(v)
        assert delta.mean() == pytest.approx(0.0, abs=1e-12)
        assert delta[0] > 0 > delta[2]  # smallest cell is densest

    def test_nonpositive_volume_rejected(self):
        with pytest.raises(ValueError):
            cell_density(np.array([1.0, 0.0]))

    def test_volume_range_concentration(self):
        # 90 small values + 10 large: 90% within the smallest 10% of range.
        v = np.concatenate([np.full(90, 1.0), np.full(10, 100.0)])
        assert volume_range_concentration(v, 0.1) == pytest.approx(0.9)

    def test_skewed_distribution_positive_skew(self):
        rng = np.random.default_rng(1)
        h = histogram(rng.lognormal(0, 1.0, size=50_000))
        assert h.skewness > 2.0
        assert h.kurtosis > 10.0
