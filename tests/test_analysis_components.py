"""Tests for thresholding and connected-component labeling."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.diy.decomposition import Decomposition
from repro.core import tessellate, tessellate_distributed
from repro.analysis.components import (
    ArrayUnionFind,
    UnionFind,
    _block_edges,
    connected_components,
    connected_components_distributed,
)
from repro.analysis.threshold import (
    density_threshold_mask,
    kept_site_ids,
    volume_threshold_mask,
)


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        for x in "abc":
            uf.add(x)
        assert len(uf) == 3
        assert len(uf.groups()) == 3

    def test_union_and_find(self):
        uf = UnionFind()
        for x in range(5):
            uf.add(x)
        uf.union(0, 1)
        uf.union(3, 4)
        uf.union(1, 3)
        assert uf.find(0) == uf.find(4)
        assert uf.find(2) != uf.find(0)
        groups = uf.groups()
        assert sorted(map(len, groups.values())) == [1, 4]

    def test_idempotent_union(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(2)
        uf.union(1, 2)
        uf.union(2, 1)
        assert len(uf.groups()) == 1

    def test_contains(self):
        uf = UnionFind()
        uf.add("x")
        assert "x" in uf and "y" not in uf

    def test_find_unregistered_names_the_id(self):
        """The error must name the offending id, not be a bare KeyError."""
        uf = UnionFind()
        uf.add(1)
        with pytest.raises(KeyError, match=r"id 977 is not registered"):
            uf.find(977)

    def test_union_with_unregistered_neighbor_raises(self):
        """The unregistered-neighbor path the distributed merge guards."""
        uf = UnionFind()
        uf.add(5)
        with pytest.raises(KeyError, match=r"977"):
            uf.union(5, 977)


class TestArrayUnionFind:
    def test_singletons(self):
        uf = ArrayUnionFind(4)
        assert len(uf) == 4
        assert [uf.find(i) for i in range(4)] == [0, 1, 2, 3]
        np.testing.assert_array_equal(uf.labels(), [0, 1, 2, 3])

    def test_union_and_find(self):
        uf = ArrayUnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        uf.union(1, 3)
        assert uf.find(0) == uf.find(4)
        assert uf.find(2) != uf.find(0)
        np.testing.assert_array_equal(uf.labels(), [0, 0, 1, 0, 0])

    def test_root_is_minimum_member(self):
        uf = ArrayUnionFind(6)
        uf.union(5, 3)
        uf.union(3, 1)
        assert uf.find(5) == 1

    def test_find_many_compresses(self):
        uf = ArrayUnionFind(8)
        uf.union_edges(np.arange(7), np.arange(1, 8))  # one chain
        roots = uf.find_many(np.arange(8))
        np.testing.assert_array_equal(roots, np.zeros(8, dtype=np.int64))
        np.testing.assert_array_equal(uf.parent, np.zeros(8, dtype=np.int64))

    def test_union_edges_empty(self):
        uf = ArrayUnionFind(3)
        uf.union_edges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert uf.labels().tolist() == [0, 1, 2]

    def test_union_edges_length_mismatch(self):
        uf = ArrayUnionFind(3)
        with pytest.raises(ValueError):
            uf.union_edges(np.array([0]), np.array([1, 2]))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_dict_oracle_on_random_graphs(self, seed):
        """Bulk vectorized unions == the dict oracle, edge for edge."""
        rng = np.random.default_rng(seed)
        n, m = 120, 300
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        auf = ArrayUnionFind(n)
        auf.union_edges(src, dst)
        duf = UnionFind()
        for i in range(n):
            duf.add(i)
        for a, b in zip(src.tolist(), dst.tolist()):
            duf.union(a, b)
        groups = sorted(tuple(g) for g in duf.groups().values())
        labels = auf.labels()
        flat_groups = sorted(
            tuple(np.flatnonzero(labels == l).tolist())
            for l in range(int(labels.max()) + 1)
        )
        assert flat_groups == groups


class TestAdjacencyEdges:
    @pytest.mark.parametrize("quantile", [0.0, 0.5, 0.9])
    def test_matches_per_cell_oracle(self, quantile):
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(9), domain, nblocks=4, ghost=4.0)
        vmin = float(np.quantile(tess.volumes(), quantile))
        mask = tess.volumes() >= vmin
        kept_arr = np.unique(tess.site_ids()[mask])
        kept_set = set(kept_arr.tolist())
        for block in tess.blocks:
            _, oracle_edges = _block_edges(block, kept_set)
            edges = block.adjacency_edges(kept_arr)
            assert sorted(map(tuple, edges.tolist())) == sorted(oracle_edges)

    def test_empty_kept(self):
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(10), domain, nblocks=1, ghost=4.0)
        edges = tess.blocks[0].adjacency_edges(np.empty(0, dtype=np.int64))
        assert edges.shape == (0, 2)


def two_cluster_points(seed=0):
    """Two well-separated tight clusters plus a background.

    The background is dense enough that no cell's extent approaches the
    ghost sizes used below — the sufficient-ghost regime where parallel
    results are exact (cf. paper Table I).
    """
    rng = np.random.default_rng(seed)
    a = rng.normal([2.5, 2.5, 2.5], 0.35, size=(60, 3))
    b = rng.normal([7.5, 7.5, 7.5], 0.35, size=(60, 3))
    bg = rng.uniform(0, 10, size=(250, 3))
    pts = np.clip(np.vstack([a, b, bg]), 0.001, 9.999)
    return pts


class TestThresholdMasks:
    def test_volume_mask(self):
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(), domain, nblocks=1, ghost=4.0)
        v = tess.volumes()
        vmin = float(np.median(v))
        mask = volume_threshold_mask(tess, vmin=vmin)
        assert mask.sum() == (v >= vmin).sum()
        assert np.all(v[mask] >= vmin)

    def test_density_mask_is_dual(self):
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(1), domain, nblocks=1, ghost=4.0)
        v = tess.volumes()
        vmin = float(np.median(v))
        np.testing.assert_array_equal(
            volume_threshold_mask(tess, vmin=vmin),
            density_threshold_mask(tess, dmax=1.0 / vmin),
        )

    def test_kept_site_ids(self):
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(2), domain, nblocks=1, ghost=4.0)
        mask = volume_threshold_mask(tess, vmin=0.0)
        assert len(kept_site_ids(tess, mask)) == tess.num_cells
        with pytest.raises(ValueError):
            kept_site_ids(tess, mask[:-1])


class TestConnectedComponents:
    def test_all_cells_one_component(self):
        """With no threshold, a periodic tessellation is fully connected."""
        domain = Bounds.cube(10.0)
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 10, size=(200, 3))
        tess = tessellate(pts, domain, nblocks=2, ghost=4.0)
        lab = connected_components(tess)
        assert lab.num_components == 1
        assert len(lab.site_ids) == 200

    def test_two_clusters_split_by_density_threshold(self):
        """Cells inside tight clusters are small; a vmax threshold keeps
        only cluster cells, which form (at least) two components."""
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(4), domain, nblocks=1, ghost=4.0)
        v = tess.volumes()
        vmax = float(np.quantile(v, 0.45))  # keep only the small cells
        lab = connected_components(tess, vmax=vmax)
        assert lab.num_components >= 2
        sizes = lab.sizes()
        assert sorted(sizes)[-2] >= 10  # two sizable cluster cores

    def test_members_and_label_of(self):
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(5), domain, nblocks=1, ghost=4.0)
        lab = connected_components(tess)
        all_members = np.concatenate(
            [lab.members(l) for l in range(lab.num_components)]
        )
        assert sorted(all_members) == sorted(lab.site_ids)
        lom = lab.label_of()
        for sid, l in zip(lab.site_ids, lab.labels):
            assert lom[int(sid)] == int(l)

    def test_empty_threshold(self):
        domain = Bounds.cube(10.0)
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 10, size=(100, 3))
        tess = tessellate(pts, domain, nblocks=1, ghost=4.0)
        lab = connected_components(tess, vmin=1e9)
        assert lab.num_components == 0
        assert len(lab.site_ids) == 0

    def test_blockcount_invariance(self):
        """Labeling must not depend on the block decomposition."""
        domain = Bounds.cube(10.0)
        pts = two_cluster_points(7)
        t1 = tessellate(pts, domain, nblocks=1, ghost=4.0)
        t8 = tessellate(pts, domain, nblocks=8, ghost=4.0)
        vmin = float(np.quantile(t1.volumes(), 0.6))
        l1 = connected_components(t1, vmin=vmin)
        l8 = connected_components(t8, vmin=vmin)
        assert l1.num_components == l8.num_components
        # Identical partitions of the same site-id set.
        def partition(lab):
            return sorted(
                tuple(sorted(lab.members(l))) for l in range(lab.num_components)
            )
        assert partition(l1) == partition(l8)


class TestDistributedComponents:
    def test_matches_serial(self):
        domain = Bounds.cube(10.0)
        pts = two_cluster_points(8)
        ids = np.arange(len(pts), dtype=np.int64)
        decomp = Decomposition.regular(domain, 4, periodic=True)
        serial = tessellate(pts, domain, nblocks=1, ghost=4.0)
        vmin = float(np.quantile(serial.volumes(), 0.5))
        ref = connected_components(serial, vmin=vmin)

        def worker(comm):
            mine = decomp.locate(pts) == comm.rank
            block, _, _ = tessellate_distributed(
                comm, decomp, pts[mine], ids[mine], ghost=4.0
            )
            return connected_components_distributed(comm, block, vmin=vmin)

        labelings = run_parallel(4, worker)
        # All ranks hold the identical global labeling.
        for lab in labelings:
            np.testing.assert_array_equal(lab.site_ids, labelings[0].site_ids)
            np.testing.assert_array_equal(lab.labels, labelings[0].labels)
        lab = labelings[0]
        assert lab.num_components == ref.num_components
        def partition(l):
            return sorted(tuple(sorted(l.members(k))) for k in range(l.num_components))
        assert partition(lab) == partition(ref)
