"""Tests for thresholding and connected-component labeling."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.diy.decomposition import Decomposition
from repro.core import tessellate, tessellate_distributed
from repro.analysis.components import (
    UnionFind,
    connected_components,
    connected_components_distributed,
)
from repro.analysis.threshold import (
    density_threshold_mask,
    kept_site_ids,
    volume_threshold_mask,
)


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        for x in "abc":
            uf.add(x)
        assert len(uf) == 3
        assert len(uf.groups()) == 3

    def test_union_and_find(self):
        uf = UnionFind()
        for x in range(5):
            uf.add(x)
        uf.union(0, 1)
        uf.union(3, 4)
        uf.union(1, 3)
        assert uf.find(0) == uf.find(4)
        assert uf.find(2) != uf.find(0)
        groups = uf.groups()
        assert sorted(map(len, groups.values())) == [1, 4]

    def test_idempotent_union(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(2)
        uf.union(1, 2)
        uf.union(2, 1)
        assert len(uf.groups()) == 1

    def test_contains(self):
        uf = UnionFind()
        uf.add("x")
        assert "x" in uf and "y" not in uf


def two_cluster_points(seed=0):
    """Two well-separated tight clusters plus a background.

    The background is dense enough that no cell's extent approaches the
    ghost sizes used below — the sufficient-ghost regime where parallel
    results are exact (cf. paper Table I).
    """
    rng = np.random.default_rng(seed)
    a = rng.normal([2.5, 2.5, 2.5], 0.35, size=(60, 3))
    b = rng.normal([7.5, 7.5, 7.5], 0.35, size=(60, 3))
    bg = rng.uniform(0, 10, size=(250, 3))
    pts = np.clip(np.vstack([a, b, bg]), 0.001, 9.999)
    return pts


class TestThresholdMasks:
    def test_volume_mask(self):
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(), domain, nblocks=1, ghost=4.0)
        v = tess.volumes()
        vmin = float(np.median(v))
        mask = volume_threshold_mask(tess, vmin=vmin)
        assert mask.sum() == (v >= vmin).sum()
        assert np.all(v[mask] >= vmin)

    def test_density_mask_is_dual(self):
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(1), domain, nblocks=1, ghost=4.0)
        v = tess.volumes()
        vmin = float(np.median(v))
        np.testing.assert_array_equal(
            volume_threshold_mask(tess, vmin=vmin),
            density_threshold_mask(tess, dmax=1.0 / vmin),
        )

    def test_kept_site_ids(self):
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(2), domain, nblocks=1, ghost=4.0)
        mask = volume_threshold_mask(tess, vmin=0.0)
        assert len(kept_site_ids(tess, mask)) == tess.num_cells
        with pytest.raises(ValueError):
            kept_site_ids(tess, mask[:-1])


class TestConnectedComponents:
    def test_all_cells_one_component(self):
        """With no threshold, a periodic tessellation is fully connected."""
        domain = Bounds.cube(10.0)
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 10, size=(200, 3))
        tess = tessellate(pts, domain, nblocks=2, ghost=4.0)
        lab = connected_components(tess)
        assert lab.num_components == 1
        assert len(lab.site_ids) == 200

    def test_two_clusters_split_by_density_threshold(self):
        """Cells inside tight clusters are small; a vmax threshold keeps
        only cluster cells, which form (at least) two components."""
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(4), domain, nblocks=1, ghost=4.0)
        v = tess.volumes()
        vmax = float(np.quantile(v, 0.45))  # keep only the small cells
        lab = connected_components(tess, vmax=vmax)
        assert lab.num_components >= 2
        sizes = lab.sizes()
        assert sorted(sizes)[-2] >= 10  # two sizable cluster cores

    def test_members_and_label_of(self):
        domain = Bounds.cube(10.0)
        tess = tessellate(two_cluster_points(5), domain, nblocks=1, ghost=4.0)
        lab = connected_components(tess)
        all_members = np.concatenate(
            [lab.members(l) for l in range(lab.num_components)]
        )
        assert sorted(all_members) == sorted(lab.site_ids)
        lom = lab.label_of()
        for sid, l in zip(lab.site_ids, lab.labels):
            assert lom[int(sid)] == int(l)

    def test_empty_threshold(self):
        domain = Bounds.cube(10.0)
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 10, size=(100, 3))
        tess = tessellate(pts, domain, nblocks=1, ghost=4.0)
        lab = connected_components(tess, vmin=1e9)
        assert lab.num_components == 0
        assert len(lab.site_ids) == 0

    def test_blockcount_invariance(self):
        """Labeling must not depend on the block decomposition."""
        domain = Bounds.cube(10.0)
        pts = two_cluster_points(7)
        t1 = tessellate(pts, domain, nblocks=1, ghost=4.0)
        t8 = tessellate(pts, domain, nblocks=8, ghost=4.0)
        vmin = float(np.quantile(t1.volumes(), 0.6))
        l1 = connected_components(t1, vmin=vmin)
        l8 = connected_components(t8, vmin=vmin)
        assert l1.num_components == l8.num_components
        # Identical partitions of the same site-id set.
        def partition(lab):
            return sorted(
                tuple(sorted(lab.members(l))) for l in range(lab.num_components)
            )
        assert partition(l1) == partition(l8)


class TestDistributedComponents:
    def test_matches_serial(self):
        domain = Bounds.cube(10.0)
        pts = two_cluster_points(8)
        ids = np.arange(len(pts), dtype=np.int64)
        decomp = Decomposition.regular(domain, 4, periodic=True)
        serial = tessellate(pts, domain, nblocks=1, ghost=4.0)
        vmin = float(np.quantile(serial.volumes(), 0.5))
        ref = connected_components(serial, vmin=vmin)

        def worker(comm):
            mine = decomp.locate(pts) == comm.rank
            block, _, _ = tessellate_distributed(
                comm, decomp, pts[mine], ids[mine], ghost=4.0
            )
            return connected_components_distributed(comm, block, vmin=vmin)

        labelings = run_parallel(4, worker)
        # All ranks hold the identical global labeling.
        for lab in labelings:
            np.testing.assert_array_equal(lab.site_ids, labelings[0].site_ids)
            np.testing.assert_array_equal(lab.labels, labelings[0].labels)
        lab = labelings[0]
        assert lab.num_components == ref.num_components
        def partition(l):
            return sorted(tuple(sorted(l.members(k))) for k in range(l.num_components))
        assert partition(lab) == partition(ref)
