"""Dynamic load balancing: SFC repartitioner, balanced decomposition, parity.

Covers the :mod:`repro.balance` machinery bottom-up — Morton keys, the
equal-load SFC cut (with recursive bisection as the independent oracle),
the summed-area-table cell-union regions, the irregular
:class:`~repro.balance.BalancedDecomposition` — and then pins the headline
contract: tessellation and void results with balancing ON are identical to
the static decomposition at 1/2/4 ranks on both execution backends, on a
clustered cloud with one clump straddling the periodic seam.
"""

import numpy as np
import pytest

from repro.balance import (
    BalancedDecomposition,
    CellUnionRegion,
    clustered_points,
    compute_cell_counts,
    load_imbalance,
    morton_key,
    rebalance_decomposition,
    recursive_bisection_partition,
    sfc_partition,
)
from repro.core.accuracy import match_tessellations
from repro.core.tessellate import tessellate
from repro.diy.bounds import Bounds
from repro.diy.decomposition import Decomposition

BOX = 16.0


def _clustered(n=1200, seed=3):
    return clustered_points(n, BOX, seed=seed), Bounds.cube(BOX)


class TestMortonKey:
    def test_orders_like_octants(self):
        # The first 8 cells of a 2^k grid in Morton order are one octant.
        coords = np.array(
            [[x, y, z] for x in range(2) for y in range(2) for z in range(2)]
        )
        keys = morton_key(coords)
        assert len(set(keys.tolist())) == 8
        assert keys.max() == 7  # 3 interleaved bits

    def test_locality(self):
        a = morton_key(np.array([[1, 1, 1]]))[0]
        b = morton_key(np.array([[1, 1, 2]]))[0]
        far = morton_key(np.array([[7, 7, 7]]))[0]
        assert abs(int(a) - int(b)) < abs(int(a) - int(far))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            morton_key(np.array([[-1, 0, 0]]))
        with pytest.raises(ValueError):
            morton_key(np.array([[1 << 21, 0, 0]]))


class TestSfcPartition:
    def test_covers_all_cells_with_contiguous_loads(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 50, size=(8, 8, 8))
        owners = sfc_partition(counts, 4)
        assert owners.shape == (counts.size,)
        assert set(np.unique(owners)) == {0, 1, 2, 3}

    def test_balances_clustered_load(self):
        pts, domain = _clustered(n=4000, seed=1)
        counts = compute_cell_counts(pts, domain, 16)
        owners = sfc_partition(counts, 4)
        loads = np.bincount(owners, weights=counts.ravel(), minlength=4)
        assert load_imbalance(loads)["max_over_mean"] < 1.25

    def test_more_blocks_than_cells_raises(self):
        with pytest.raises(ValueError):
            sfc_partition(np.ones((2, 2, 2), dtype=np.int64), 9)

    def test_rcb_oracle_agrees_on_quality(self):
        # Recursive bisection is the independent cross-check: both cuts
        # must land within the acceptance bar on the same histogram.
        pts, domain = _clustered(n=4000, seed=1)
        counts = compute_cell_counts(pts, domain, 16)
        for part in (sfc_partition, recursive_bisection_partition):
            owners = part(counts, 4)
            loads = np.bincount(owners, weights=counts.ravel(), minlength=4)
            assert load_imbalance(loads)["max_over_mean"] < 1.35, part.__name__


class TestLoadImbalance:
    def test_uniform(self):
        g = load_imbalance(np.array([10, 10, 10, 10]))
        assert g["max_over_mean"] == 1.0 and g["max_over_min"] == 1.0

    def test_skewed(self):
        g = load_imbalance(np.array([30, 10, 10, 10]))
        assert g["max_over_mean"] == pytest.approx(2.0)
        assert g["max_over_min"] == pytest.approx(3.0)

    def test_empty_rank_gives_inf_over_min(self):
        g = load_imbalance(np.array([4, 0]))
        assert np.isinf(g["max_over_min"])

    def test_all_zero(self):
        assert load_imbalance(np.zeros(3, dtype=int))["max_over_mean"] == 1.0


class TestCellUnionRegion:
    def test_within_matches_bruteforce(self):
        rng = np.random.default_rng(5)
        domain = Bounds.cube(8.0)
        grid = (4, 4, 4)
        mask = rng.random(grid) < 0.4
        mask.flat[0] = True  # never empty
        region = CellUnionRegion(domain, grid, mask)
        pts = rng.uniform(-2.0, 10.0, size=(300, 3))
        h = 2.0
        cells = np.argwhere(mask)
        los = cells * h
        for radius in (0.0, 0.5, 1.7):
            got = region.within(pts, radius)
            for i, p in enumerate(pts):
                d = np.maximum(los - p, p - (los + h)).max(axis=1)
                assert bool(got[i]) == bool((d <= radius).any()), (p, radius)

    def test_volume_and_bbox(self):
        mask = np.zeros((2, 2, 2), dtype=bool)
        mask[0, 0, 0] = mask[1, 1, 1] = True
        region = CellUnionRegion(Bounds.cube(4.0), (2, 2, 2), mask)
        assert region.volume() == pytest.approx(16.0)
        lo, hi = region.bounding_box().as_arrays()
        np.testing.assert_array_equal(lo, [0, 0, 0])
        np.testing.assert_array_equal(hi, [4, 4, 4])


class TestBalancedDecomposition:
    def _decomp(self, nblocks=4, n=2000, seed=3):
        pts, domain = _clustered(n=n, seed=seed)
        counts = compute_cell_counts(pts, domain, 8)
        return rebalance_decomposition(domain, counts, nblocks), pts

    def test_locate_covers_and_respects_owners(self):
        d, pts = self._decomp()
        gids = d.locate(pts)
        assert gids.min() >= 0 and gids.max() < d.nblocks
        # Every block region contains the points located to it.
        for g in range(d.nblocks):
            mine = pts[gids == g]
            assert d.block_region(g).within(mine, 0.0).all()

    def test_locate_wraps_periodic_points(self):
        d, _ = self._decomp()
        inside = d.locate(np.array([[0.5, 0.5, 0.5]]))[0]
        wrapped = d.locate(np.array([[BOX + 0.5, 0.5, 0.5]]))[0]
        assert inside == wrapped

    def test_gid_validation(self):
        d, _ = self._decomp()
        with pytest.raises(ValueError, match="gid 99"):
            d.block(99)
        with pytest.raises(ValueError):
            d.coords_of_gid(0)  # no regular grid to index
        with pytest.raises(ValueError):
            d.gid_of_coords((0, 0, 0))

    def test_links_symmetric(self):
        d, _ = self._decomp(nblocks=3)
        for b in d.blocks():
            for link in b.links:
                back = [
                    l
                    for l in d.block(link.gid).links
                    if l.gid == b.gid
                    and l.wrap == tuple(-w for w in link.wrap)
                ]
                assert back, f"no reverse link for {b.gid}->{link}"

    def test_neighbors_near_points_matches_bruteforce(self):
        from repro.diy.bounds import periodic_translation

        d, pts = self._decomp(nblocks=3, n=800)
        sample = pts[:120]
        radius = 1.5
        for gid in range(d.nblocks):
            got = {
                (link.gid, link.wrap): mask
                for link, mask in d.neighbors_near_points(gid, sample, radius)
            }
            for link in d.block(gid).links:
                shift = periodic_translation(
                    np.asarray(link.wrap, dtype=float), d.domain
                )
                expected = d.block_region(link.gid).within(
                    sample + shift, radius
                )
                mask = got.get((link.gid, link.wrap))
                if mask is None:
                    assert not expected.any()
                else:
                    np.testing.assert_array_equal(mask, expected)

    def test_rejects_uncovered_owners(self):
        domain = Bounds.cube(8.0)
        # Owners 0 and 2 but nothing owns gid 1: the owner set has a hole.
        owners = np.array([0, 0, 0, 0, 2, 2, 2, 2], dtype=np.int64)
        with pytest.raises(ValueError):
            BalancedDecomposition(domain, (2, 2, 2), owners, periodic=True)


BACKENDS = ("thread", "process")


class TestBalanceParity:
    """Satellite 4: analysis results identical with balancing on vs off."""

    @pytest.mark.parametrize("exec_backend", BACKENDS)
    @pytest.mark.parametrize("nblocks", (1, 2, 4))
    def test_tessellation_identical(self, nblocks, exec_backend):
        pts, domain = _clustered()
        static = tessellate(
            pts, domain, nblocks=nblocks, exec_backend=exec_backend
        )
        balanced = tessellate(
            pts,
            domain,
            nblocks=nblocks,
            exec_backend=exec_backend,
            balance_threshold=1.05,
        )
        if nblocks > 1:
            assert balanced.balance is not None
            assert balanced.balance["rebalanced"]
            assert balanced.balance["max_over_mean_after"] < 1.25
        assert balanced.num_cells == static.num_cells
        np.testing.assert_array_equal(
            np.sort(balanced.site_ids()), np.sort(static.site_ids())
        )
        match = match_tessellations(balanced, static)
        assert match.cells_matching == static.num_cells

    @pytest.mark.parametrize("exec_backend", BACKENDS)
    def test_voids_identical(self, exec_backend):
        from repro.analysis.voids import find_voids

        pts, domain = _clustered()
        catalogs = []
        for threshold in (None, 1.05):
            tess = tessellate(
                pts,
                domain,
                nblocks=4,
                exec_backend=exec_backend,
                balance_threshold=threshold,
            )
            catalogs.append(find_voids(tess))
        static_cat, balanced_cat = catalogs
        assert balanced_cat.num_voids == static_cat.num_voids
        static_parts = {frozenset(v.site_ids.tolist()) for v in static_cat.voids}
        balanced_parts = {
            frozenset(v.site_ids.tolist()) for v in balanced_cat.voids
        }
        assert balanced_parts == static_parts

    def test_distributed_voids_on_balanced_decomposition(self):
        from repro.analysis.voids import find_voids_distributed
        from repro.core.tessellate import tessellate_distributed
        from repro.diy.comm import run_parallel

        pts, domain = _clustered()
        pid = np.arange(len(pts), dtype=np.int64)
        hist = compute_cell_counts(pts, domain, 8)
        balanced = rebalance_decomposition(domain, hist, 2)
        static = Decomposition.regular(domain, 2, periodic=True)

        ghost = 4.0 * (domain.volume / len(pts)) ** (1.0 / 3.0)

        def worker(comm, decomp, pts, pid, ghost):
            mine = decomp.locate(pts) == comm.rank
            block, _, _ = tessellate_distributed(
                comm, decomp, pts[mine], pid[mine], ghost=ghost
            )
            return find_voids_distributed(comm, block)

        cat_s = run_parallel(2, worker, static, pts, pid, ghost)[0]
        cat_b = run_parallel(2, worker, balanced, pts, pid, ghost)[0]
        assert cat_b.num_voids == cat_s.num_voids
        assert {frozenset(v.site_ids.tolist()) for v in cat_b.voids} == {
            frozenset(v.site_ids.tolist()) for v in cat_s.voids
        }

    def test_non_flat_geometry_backend_rejected(self):
        pts, domain = _clustered(n=400)
        with pytest.raises(ValueError, match="flat geometry engine"):
            tessellate(
                pts,
                domain,
                nblocks=2,
                backend="clip",
                balance_threshold=1.01,
            )


class TestSimulationRebalance:
    def _spec(self):
        return {
            "tools": [
                {"tool": "tessellation", "params": {"ghost": 4.0}, "steps": [4]},
                {"tool": "void_finder", "steps": [4]},
            ]
        }

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_end_to_end_identical_and_rebalanced(self, backend):
        from repro.hacc import SimulationConfig
        from repro.insitu import run_simulation_with_tools

        cfg = SimulationConfig(np_side=10, nsteps=4, seed=5)
        static = run_simulation_with_tools(
            cfg, self._spec(), nranks=2, backend=backend
        )
        balanced = run_simulation_with_tools(
            cfg,
            self._spec(),
            nranks=2,
            backend=backend,
            balance_threshold=1.001,
        )
        assert static.rebalances == 0
        assert balanced.rebalances >= 1
        t_s, t_b = static["tessellation"][4], balanced["tessellation"][4]
        assert t_b.num_cells == t_s.num_cells
        np.testing.assert_array_equal(
            np.sort(t_b.site_ids()), np.sort(t_s.site_ids())
        )
        assert match_tessellations(t_b, t_s).cells_matching == t_s.num_cells
        v_s, v_b = static["void_finder"][4], balanced["void_finder"][4]
        assert v_b.num_voids == v_s.num_voids
        assert {frozenset(v.site_ids.tolist()) for v in v_b.voids} == {
            frozenset(v.site_ids.tolist()) for v in v_s.voids
        }

    def test_rebalance_reduces_imbalance_and_conserves_ids(self):
        from repro.diy.comm import run_parallel
        from repro.hacc import SimulationConfig
        from repro.hacc.simulation import HACCSimulation

        cfg = SimulationConfig(
            np_side=10, nsteps=3, seed=5, balance_threshold=1.001
        )

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.run()
            counts = comm.allgather(sim.num_local)
            ids = comm.gather(np.asarray(sim.local.ids))
            return (
                sim.rebalances,
                sim.last_imbalance,
                counts,
                None if ids is None else np.sort(np.concatenate(ids)),
            )

        results = run_parallel(2, worker)
        assert all(r[0] >= 1 for r in results)
        assert all(r[0] == results[0][0] for r in results)  # collective
        # Post-rebalance ownership tracks the balanced decomposition.
        assert results[0][1] is not None
        np.testing.assert_array_equal(
            results[0][3], np.arange(cfg.np_side**3, dtype=np.int64)
        )

    def test_config_validation(self):
        from repro.hacc import SimulationConfig

        with pytest.raises(ValueError):
            SimulationConfig(np_side=4, nsteps=1, balance_threshold=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(np_side=4, nsteps=1, balance_grid=1)
        with pytest.raises(ValueError):
            SimulationConfig(np_side=4, nsteps=1, balance_every=0)

    def test_observe_gauges_published(self):
        from repro import observe
        from repro.diy.comm import run_parallel
        from repro.hacc import SimulationConfig
        from repro.hacc.simulation import HACCSimulation

        cfg = SimulationConfig(
            np_side=8, nsteps=2, seed=5, balance_threshold=1.001
        )

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.run()
            return sim.rebalances

        observe.enable()
        try:
            # Thread backend: the ranks share this process's registry.
            rebalances = run_parallel(2, worker)
            gauges = observe.registry().as_dict()["gauges"]
            assert any(k.startswith("balance.max_over_mean") for k in gauges)
            if all(r >= 1 for r in rebalances):
                assert any(k.startswith("balance.post.") for k in gauges)
                counters = observe.registry().as_dict()["counters"]
                assert any(
                    k.startswith("balance.rebalances") for k in counters
                )
        finally:
            observe.disable()


class TestParticleSetEdgeCases:
    def _pset(self, n=5, seed=0):
        from repro.hacc.particles import ParticleSet

        rng = np.random.default_rng(seed)
        return ParticleSet(
            positions=rng.random((n, 3)),
            velocities=rng.random((n, 3)),
            ids=np.arange(n, dtype=np.int64),
            annotations={"phi": rng.random(n)},
        )

    def test_concatenate_empty_list(self):
        from repro.hacc.particles import ParticleSet

        empty = ParticleSet.concatenate([])
        assert len(empty) == 0
        assert empty.ids.dtype == np.int64

    def test_zero_row_selection_roundtrips(self):
        p = self._pset()
        sel = p.select(np.array([], dtype=np.int64))
        assert len(sel) == 0
        assert sel.positions.dtype == p.positions.dtype
        assert sel.ids.dtype == np.int64
        assert set(sel.annotations) == {"phi"}
        # An empty *float* index array (np.where on nothing, list []) must
        # coerce rather than crash.
        sel2 = p.select(np.array([]))
        assert len(sel2) == 0

    def test_concatenate_with_empty_parts(self):
        from repro.hacc.particles import ParticleSet

        p = self._pset(n=4)
        empty = ParticleSet.empty()
        out = ParticleSet.concatenate([empty, p, empty])
        assert len(out) == 4
        assert set(out.annotations) == {"phi"}
        np.testing.assert_array_equal(out.ids, p.ids)

    def test_concatenate_mismatched_annotations_raise(self):
        p1 = self._pset(n=3, seed=1)
        p2 = self._pset(n=2, seed=2)
        p2.annotations["rho"] = np.zeros(2)
        from repro.hacc.particles import ParticleSet

        with pytest.raises(ValueError, match="rho"):
            ParticleSet.concatenate([p1, p2])

    def test_annotation_shape_validated(self):
        from repro.hacc.particles import ParticleSet

        with pytest.raises(ValueError):
            ParticleSet(
                positions=np.zeros((3, 3)),
                velocities=np.zeros((3, 3)),
                ids=np.arange(3, dtype=np.int64),
                annotations={"phi": np.zeros(2)},
            )
