"""Unit and property tests for repro.diy.bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diy.bounds import (
    Bounds,
    minimum_image,
    periodic_translation,
    wrap_positions,
)


class TestBoundsBasics:
    def test_cube_constructor(self):
        b = Bounds.cube(10.0)
        assert b.min == (0.0, 0.0, 0.0)
        assert b.max == (10.0, 10.0, 10.0)
        assert b.dim == 3
        assert b.volume == pytest.approx(1000.0)

    def test_cube_with_origin(self):
        b = Bounds.cube(4.0, dim=2, origin=-2.0)
        assert b.min == (-2.0, -2.0)
        assert b.max == (2.0, 2.0)

    def test_from_arrays(self):
        b = Bounds.from_arrays(np.zeros(3), np.ones(3) * 5)
        assert b == Bounds((0, 0, 0), (5, 5, 5))

    def test_mismatched_corners_raise(self):
        with pytest.raises(ValueError):
            Bounds((0.0, 0.0), (1.0, 1.0, 1.0))

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Bounds((1.0, 0.0, 0.0), (0.0, 1.0, 1.0))

    def test_zero_thickness_allowed(self):
        # min == max on an axis is permitted (used for planar slabs).
        b = Bounds((0.0, 0.0), (1.0, 0.0))
        assert b.volume == 0.0

    def test_sizes_and_center(self):
        b = Bounds((1.0, 2.0, 3.0), (5.0, 4.0, 9.0))
        np.testing.assert_allclose(b.sizes, [4.0, 2.0, 6.0])
        np.testing.assert_allclose(b.center, [3.0, 3.0, 6.0])

    def test_hashable_and_frozen(self):
        b = Bounds.cube(1.0)
        assert hash(b) == hash(Bounds.cube(1.0))
        with pytest.raises(AttributeError):
            b.min = (1, 2, 3)  # type: ignore[misc]


class TestContainment:
    def test_half_open_semantics(self):
        b = Bounds.cube(2.0)
        assert b.contains([0.0, 0.0, 0.0])
        assert not b.contains([2.0, 0.0, 0.0])  # upper face excluded
        assert b.contains_closed([2.0, 2.0, 2.0])  # but closed test includes it

    def test_vectorized_contains(self):
        b = Bounds.cube(1.0)
        pts = np.array([[0.5, 0.5, 0.5], [1.5, 0.5, 0.5], [-0.1, 0.5, 0.5]])
        np.testing.assert_array_equal(b.contains(pts), [True, False, False])

    def test_distance_to_boundary(self):
        b = Bounds.cube(10.0)
        pts = np.array([[5.0, 5.0, 5.0], [1.0, 5.0, 5.0], [9.5, 5.0, 5.0]])
        np.testing.assert_allclose(b.distance_to_boundary(pts), [5.0, 1.0, 0.5])

    def test_distance_outside_is_zero(self):
        b = Bounds.cube(10.0)
        assert b.distance_to_boundary(np.array([[11.0, 5.0, 5.0]]))[0] == 0.0

    def test_corners_count(self):
        assert Bounds.cube(1.0).corners().shape == (8, 3)
        assert Bounds.cube(1.0, dim=2).corners().shape == (4, 2)


class TestGeometryOps:
    def test_grown(self):
        g = Bounds.cube(10.0).grown(2.0)
        assert g.min == (-2.0,) * 3
        assert g.max == (12.0,) * 3

    def test_grown_anisotropic(self):
        g = Bounds.cube(10.0).grown(np.array([1.0, 2.0, 3.0]))
        assert g.min == (-1.0, -2.0, -3.0)

    def test_clamped_to(self):
        a = Bounds.cube(10.0).grown(5.0)
        c = a.clamped_to(Bounds.cube(10.0))
        assert c == Bounds.cube(10.0)

    def test_clamped_disjoint_raises(self):
        with pytest.raises(ValueError):
            Bounds.cube(1.0).clamped_to(Bounds.cube(1.0, origin=5.0))

    def test_intersects(self):
        a = Bounds.cube(1.0)
        assert a.intersects(Bounds.cube(1.0, origin=1.0))  # shared corner
        assert not a.intersects(Bounds.cube(1.0, origin=1.5))


class TestPeriodicHelpers:
    def test_wrap_positions(self):
        d = Bounds.cube(10.0)
        pts = np.array([[10.5, -0.5, 5.0], [25.0, 5.0, 5.0]])
        wrapped = wrap_positions(pts, d)
        np.testing.assert_allclose(wrapped, [[0.5, 9.5, 5.0], [5.0, 5.0, 5.0]])

    def test_wrap_with_offset_origin(self):
        d = Bounds.cube(10.0, origin=-5.0)
        np.testing.assert_allclose(wrap_positions(np.array([[6.0, 0.0, 0.0]]), d),
                                   [[-4.0, 0.0, 0.0]])

    def test_periodic_translation_sign(self):
        # wrap=+1 crosses the upper face: a particle near the top must arrive
        # just below the neighbor's lower ghost edge, i.e. shift by -L.
        d = Bounds.cube(10.0)
        t = periodic_translation(np.array([1, 0, -1]), d)
        np.testing.assert_allclose(t, [-10.0, 0.0, 10.0])

    def test_minimum_image(self):
        d = Bounds.cube(10.0)
        delta = np.array([[9.0, -9.0, 4.0]])
        np.testing.assert_allclose(minimum_image(delta, d), [[-1.0, 1.0, 4.0]])


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=3,
        max_size=3,
    ),
    st.floats(min_value=0.1, max_value=100.0),
)
def test_wrap_is_idempotent_and_in_domain(point, size):
    d = Bounds.cube(size)
    p = np.array([point])
    w = wrap_positions(p, d)
    assert np.all(w >= 0.0) and np.all(w < size + 1e-9)
    np.testing.assert_allclose(wrap_positions(w, d), w, atol=1e-9)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        min_size=3,
        max_size=3,
    ),
    st.floats(min_value=1.0, max_value=100.0),
)
def test_minimum_image_within_half_box(delta, size):
    d = Bounds.cube(size)
    m = minimum_image(np.array(delta), d)
    assert np.all(np.abs(m) <= size / 2 + 1e-9)
