"""Tests for tree reductions (DIY merge) and the correlation function."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.diy.reduction import tree_allreduce, tree_reduce
from repro.hacc.correlation import pair_correlation


class TestTreeReduce:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 13])
    def test_sum_matches_gather(self, n):
        def worker(comm):
            return tree_reduce(comm, comm.rank + 1, lambda a, b: a + b)

        out = run_parallel(n, worker)
        assert out[0] == n * (n + 1) // 2
        assert all(v is None for v in out[1:])

    def test_nonzero_root(self):
        def worker(comm):
            return tree_reduce(comm, comm.rank, lambda a, b: a + b, root=2)

        out = run_parallel(4, worker)
        assert out[2] == 6
        assert out[0] is None

    def test_invalid_root(self):
        def worker(comm):
            return tree_reduce(comm, 0, lambda a, b: a + b, root=9)

        with pytest.raises(Exception):
            run_parallel(2, worker)

    def test_noncommutative_op_rank_order(self):
        """Concatenation must come out in rank order (associative only)."""
        def worker(comm):
            return tree_reduce(comm, [comm.rank], lambda a, b: a + b)

        for n in (2, 3, 4, 6, 7):
            out = run_parallel(n, worker)
            assert out[0] == list(range(n))

    def test_allreduce(self):
        def worker(comm):
            return tree_allreduce(comm, comm.rank + 1, max)

        assert run_parallel(5, worker) == [5] * 5

    def test_array_payloads(self):
        def worker(comm):
            return tree_allreduce(
                comm, np.full(3, float(comm.rank)), lambda a, b: a + b
            )

        out = run_parallel(4, worker)
        for arr in out:
            np.testing.assert_allclose(arr, [6.0, 6.0, 6.0])


class TestPairCorrelation:
    def test_poisson_is_uncorrelated(self):
        rng = np.random.default_rng(0)
        box = 32.0
        pos = rng.uniform(0, box, size=(8000, 3))
        cf = pair_correlation(pos, Bounds.cube(box), r_max=8.0, nbins=8)
        # xi consistent with zero (within a few times Poisson error).
        big_bins = cf.pairs > 500
        assert np.all(np.abs(cf.xi[big_bins]) < 0.1)

    def test_clustered_sample_positive_xi_small_r(self):
        rng = np.random.default_rng(1)
        box = 32.0
        centers = rng.uniform(0, box, size=(60, 3))
        cloud = (
            centers[:, None, :] + rng.normal(0, 0.5, size=(60, 25, 3))
        ).reshape(-1, 3) % box
        cf = pair_correlation(cloud, Bounds.cube(box), r_max=8.0, nbins=10)
        assert cf.xi[0] > 5.0  # strong small-scale clustering
        assert cf.xi[0] > cf.xi[-1]  # decreasing with separation

    def test_pair_counts_periodic(self):
        """Two particles straddling the seam count as one close pair."""
        box = 10.0
        pos = np.array([[0.1, 5.0, 5.0], [9.9, 5.0, 5.0]])
        cf = pair_correlation(pos, Bounds.cube(box), r_max=1.0, nbins=4,
                              r_min=0.05)
        assert cf.pairs.sum() == 1

    def test_invalid_arguments(self):
        box = Bounds.cube(10.0)
        pts = np.random.default_rng(2).uniform(0, 10, (50, 3))
        with pytest.raises(ValueError):
            pair_correlation(pts, box, r_max=6.0)  # > box/2
        with pytest.raises(ValueError):
            pair_correlation(pts, box, r_max=2.0, r_min=3.0)
        with pytest.raises(ValueError):
            pair_correlation(pts[:1], box, r_max=2.0)
        with pytest.raises(ValueError):
            pair_correlation(np.zeros((5, 2)), box, r_max=2.0)

    def test_rows(self):
        pts = np.random.default_rng(3).uniform(0, 10, (500, 3))
        cf = pair_correlation(pts, Bounds.cube(10.0), r_max=3.0, nbins=5)
        assert len(cf.rows()) == 5

    def test_evolved_snapshot_clusters(self):
        from repro.hacc import SimulationConfig, run_simulation

        cfg = SimulationConfig(np_side=16, nsteps=30, seed=6)
        final = run_simulation(cfg)
        pos = final.positions * cfg.cell_size
        cf = pair_correlation(pos, cfg.domain(), r_max=6.0, nbins=8)
        assert cf.xi[0] > 1.0  # nonlinear clustering at small r
