"""Regression tests for integer-exact ghost deduplication.

The old dedup key concatenated the rounded positions with
``ghost_ids.astype(float)`` — float64 is lossy above 2**53, so distinct
int64 ids silently collide in exactly the production id spaces the
ROADMAP targets.  The fix dedups on an integer-exact (quantized position,
id) key; these tests pin both the 2**63-adjacent behavior and the
bit-identical small-id semantics, on both execution backends.
"""

import numpy as np
import pytest

from repro.core.ghost import _dedup_ghosts, exchange_ghost_particles
from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.diy.decomposition import Decomposition

BIG = 2**63 - 128  # int64 ids that all collapse to the same float64


def _old_float_dedup(pos, ids):
    """The pre-fix float-key dedup, kept as the small-id oracle."""
    key = np.round(pos, 9)
    _, unique_idx = np.unique(
        np.concatenate([key, ids[:, None].astype(float)], axis=1),
        axis=0,
        return_index=True,
    )
    unique_idx.sort()
    return pos[unique_idx], ids[unique_idx]


class TestDedupKernel:
    def test_huge_ids_do_not_collide(self):
        """Distinct ids near 2**63 share a float64 image; all must survive."""
        ids = np.array([BIG, BIG + 1, BIG + 2], dtype=np.int64)
        assert len({float(i) for i in ids.tolist()}) == 1  # the trap
        pos = np.zeros((3, 3))
        _, kept = _dedup_ghosts(pos, ids)
        assert sorted(kept.tolist()) == sorted(ids.tolist())

    def test_true_duplicates_still_collapse(self):
        ids = np.array([BIG, BIG + 1, BIG], dtype=np.int64)
        pos = np.array([[1.0, 2.0, 3.0]] * 3)
        kept_pos, kept = _dedup_ghosts(pos, ids)
        assert sorted(kept.tolist()) == [BIG, BIG + 1]
        assert kept_pos.shape == (2, 3)

    def test_same_id_different_position_kept(self):
        """Periodic images share an id but differ in translated position."""
        ids = np.array([7, 7], dtype=np.int64)
        pos = np.array([[0.0, 0.0, 0.0], [10.0, 0.0, 0.0]])
        _, kept = _dedup_ghosts(pos, ids)
        assert len(kept) == 2

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_small_ids_match_old_float_path(self, seed):
        """For ids < 2**53 the fix is bit-identical to the old behavior."""
        rng = np.random.default_rng(seed)
        n = 80
        pos = rng.uniform(0, 10, size=(n, 3))
        ids = rng.integers(0, 2**52, size=n, dtype=np.int64)
        # inject duplicate rows (same id + position, as multi-link
        # delivery produces)
        dup = rng.integers(0, n, size=20)
        pos = np.vstack([pos, pos[dup]])
        ids = np.concatenate([ids, ids[dup]])
        new_pos, new_ids = _dedup_ghosts(pos, ids)
        old_pos, old_ids = _old_float_dedup(pos, ids)
        np.testing.assert_array_equal(new_ids, old_ids)
        np.testing.assert_array_equal(new_pos, old_pos)

    def test_empty(self):
        pos, ids = _dedup_ghosts(np.empty((0, 3)), np.empty(0, dtype=np.int64))
        assert len(pos) == 0 and len(ids) == 0


def _exchange_worker(comm, pts, ids, decomp, ghost):
    mine = decomp.locate(pts) == comm.rank
    gpos, gids = exchange_ghost_particles(
        decomp, comm, comm.rank, pts[mine], ids[mine], ghost
    )
    return gpos.copy(), gids.copy()


@pytest.mark.parametrize("exec_backend", ["thread", "process"])
def test_exchange_with_huge_ids_matches_small_ids(exec_backend):
    """End-to-end: the exchange yields the same ghost sets whether ids are
    small or offset into the float-lossy range above 2**53."""
    rng = np.random.default_rng(5)
    pts = rng.uniform(0, 10, size=(300, 3))
    small = np.arange(len(pts), dtype=np.int64)
    huge = small + (BIG - len(pts))
    decomp = Decomposition.regular(Bounds.cube(10.0), 4, periodic=True)

    got_small = run_parallel(
        4, _exchange_worker, pts, small, decomp, 2.5, backend=exec_backend
    )
    got_huge = run_parallel(
        4, _exchange_worker, pts, huge, decomp, 2.5, backend=exec_backend
    )
    for (spos, sids), (hpos, hids) in zip(got_small, got_huge):
        assert len(sids) > 0  # the exchange actually produced ghosts
        np.testing.assert_array_equal(hids - (BIG - len(pts)), sids)
        np.testing.assert_array_equal(hpos, spos)
