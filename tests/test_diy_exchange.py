"""Tests for the neighborhood exchange (repro.diy.exchange)."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.diy.comm import ParallelError, run_parallel
from repro.diy.decomposition import Decomposition
from repro.diy.exchange import Assignment, NeighborExchanger


class TestAssignment:
    def test_round_robin(self):
        a = Assignment(nblocks=8, nranks=3)
        assert [a.rank_of(g) for g in range(8)] == [0, 1, 2, 0, 1, 2, 0, 1]
        assert a.gids_of(0) == [0, 3, 6]
        assert a.gids_of(2) == [2, 5]

    def test_one_block_per_rank(self):
        a = Assignment(4, 4)
        assert all(a.rank_of(g) == g for g in range(4))

    def test_more_ranks_than_blocks_rejected(self):
        with pytest.raises(ValueError):
            Assignment(2, 4)

    def test_out_of_range(self):
        a = Assignment(4, 2)
        with pytest.raises(ValueError):
            a.rank_of(4)
        with pytest.raises(ValueError):
            a.gids_of(2)


def _translate_payload(payload, translation):
    """Transform callback: payload is a positions array."""
    return payload + translation


class TestExchangeBasics:
    def test_face_exchange_two_blocks(self):
        decomp = Decomposition(Bounds.cube(8.0), (2, 1, 1), periodic=False)

        def f(comm):
            ex = NeighborExchanger(decomp, comm)
            gid = comm.rank
            link = next(l for l in decomp.block(gid).links if l.gid == 1 - gid)
            ex.enqueue(gid, link, f"from-{gid}")
            inbox = ex.exchange()
            return inbox[gid]

        out = run_parallel(2, f)
        assert out[0] == [(1, "from-1")]
        assert out[1] == [(0, "from-0")]

    def test_exchange_requires_all_ranks(self):
        # A rank with nothing to send still participates and gets an inbox.
        decomp = Decomposition(Bounds.cube(8.0), (2, 1, 1), periodic=False)

        def f(comm):
            ex = NeighborExchanger(decomp, comm)
            if comm.rank == 0:
                link = decomp.block(0).links[0]
                ex.enqueue(0, link, "x")
            return ex.exchange()

        out = run_parallel(2, f)
        assert out[1][1] == [(0, "x")]
        assert out[0][0] == []

    def test_enqueue_foreign_block_rejected(self):
        decomp = Decomposition(Bounds.cube(8.0), (2, 1, 1), periodic=False)

        def f(comm):
            ex = NeighborExchanger(decomp, comm)
            ex.enqueue(1 - comm.rank, decomp.block(1 - comm.rank).links[0], "x")

        with pytest.raises(ParallelError):
            run_parallel(2, f)

    def test_multiple_blocks_per_rank_serial(self):
        # Serial mode: 1 rank owns 4 blocks and exchanges with itself.
        decomp = Decomposition(Bounds.cube(8.0), (2, 2, 1), periodic=False)

        def f(comm):
            ex = NeighborExchanger(decomp, comm)
            for gid in ex.local_gids:
                for link in decomp.block(gid).links:
                    ex.enqueue(gid, link, (gid, link.gid))
            return ex.exchange()

        inbox = run_parallel(1, f)[0]
        assert set(inbox) == {0, 1, 2, 3}
        # Every block hears from its 3 neighbors exactly once.
        for gid, items in inbox.items():
            srcs = sorted(src for src, _ in items)
            assert srcs == sorted(set(range(4)) - {gid})
            for src, (s, d) in items:
                assert s == src and d == gid

    def test_queue_cleared_between_rounds(self):
        decomp = Decomposition(Bounds.cube(8.0), (2, 1, 1), periodic=False)

        def f(comm):
            ex = NeighborExchanger(decomp, comm)
            link = next(l for l in decomp.block(comm.rank).links)
            ex.enqueue(comm.rank, link, "round1")
            first = ex.exchange()
            second = ex.exchange()  # nothing enqueued
            return (first, second)

        first, second = run_parallel(2, f)[0]
        assert first[0] and not second[0]


class TestPeriodicTransform:
    def test_transform_applied_on_periodic_link_only(self):
        domain = Bounds.cube(8.0)
        decomp = Decomposition(domain, (2, 1, 1), periodic=True)

        def f(comm):
            ex = NeighborExchanger(decomp, comm, transform=_translate_payload)
            gid = comm.rank
            pos = (
                np.array([[7.9, 1.0, 1.0]])
                if gid == 1
                else np.array([[0.1, 1.0, 1.0]])
            )
            for link in decomp.block(gid).links:
                wraps = link.wrap[0] != 0 and link.wrap[1:] == (0, 0)
                if link.gid == 1 - gid and wraps:
                    ex.enqueue(gid, link, pos.copy())
                if link.gid == 1 - gid and link.wrap == (0, 0, 0):
                    ex.enqueue(gid, link, pos.copy())
            inbox = ex.exchange()
            return inbox[gid]

        out = run_parallel(2, f)
        # Block 0 receives block 1's particle twice: untransformed through
        # the direct face link, and shifted by -L through the periodic seam.
        got0 = sorted(float(p[0, 0]) for _, p in out[0])
        assert got0 == pytest.approx([-0.1, 7.9])
        got1 = sorted(float(p[0, 0]) for _, p in out[1])
        assert got1 == pytest.approx([0.1, 8.1])

    def test_no_transform_passes_payload_unchanged(self):
        domain = Bounds.cube(8.0)
        decomp = Decomposition(domain, (1, 1, 1), periodic=True)

        def f(comm):
            ex = NeighborExchanger(decomp, comm)  # no transform
            link = decomp.block(0).links[0]
            ex.enqueue(0, link, np.array([[1.0, 2.0, 3.0]]))
            return ex.exchange()

        inbox = run_parallel(1, f)[0]
        np.testing.assert_allclose(inbox[0][0][1], [[1.0, 2.0, 3.0]])


class TestGhostPattern:
    """End-to-end: the near-point targeted ghost pattern of paper Fig. 6."""

    def test_particles_land_in_neighbor_ghost_regions(self):
        domain = Bounds.cube(16.0)
        decomp = Decomposition(domain, (2, 2, 1), periodic=True)
        ghost = 2.0

        def f(comm):
            gid = comm.rank
            block = decomp.block(gid)
            lo, hi = block.core.as_arrays()
            r = np.random.default_rng(100 + gid)
            pts = r.uniform(lo, hi, size=(200, 3))

            ex = NeighborExchanger(decomp, comm, transform=_translate_payload)
            for link, mask in decomp.neighbors_near_points(gid, pts, ghost):
                if mask.any():
                    ex.enqueue(gid, link, pts[mask].copy())
            inbox = ex.exchange()

            ghost_box = block.ghost_bounds(ghost)
            received = [p for _, payload in inbox[gid] for p in payload]
            if not received:
                return True
            return all(ghost_box.contains_closed(np.array(received)))

        assert all(run_parallel(4, f))

    def test_ghost_exchange_is_bidirectional_and_complete(self):
        """Every particle within ghost distance of a neighbor must arrive there."""
        domain = Bounds.cube(8.0)
        decomp = Decomposition(domain, (2, 1, 1), periodic=True)
        ghost = 1.0

        def f(comm):
            gid = comm.rank
            block = decomp.block(gid)
            lo, hi = block.core.as_arrays()
            r = np.random.default_rng(7 + gid)
            pts = r.uniform(lo, hi, size=(300, 3))

            ex = NeighborExchanger(decomp, comm, transform=_translate_payload)
            for link, mask in decomp.neighbors_near_points(gid, pts, ghost):
                if mask.any():
                    ex.enqueue(gid, link, pts[mask].copy())
            inbox = ex.exchange()
            received = np.concatenate(
                [p for _, p in inbox[gid]] or [np.empty((0, 3))]
            )
            return pts, received

        out = run_parallel(2, f)
        for gid in range(2):
            _, received = out[gid]
            core = decomp.block(gid).core
            ghost_box = core.grown(ghost)
            # All received particles are inside the ghost box but not the core
            # interior... they may be inside core? No: they come from the other
            # block's core, disjoint from ours (up to periodic images).
            assert len(received) > 0
            assert np.all(ghost_box.contains_closed(received))
            assert not np.any(core.contains(received))
