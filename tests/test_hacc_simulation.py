"""Tests for Zel'dovich ICs, the integrator, and the simulation driver."""

import numpy as np
import pytest

from repro.diy.comm import run_parallel
from repro.hacc import (
    LCDM,
    HACCSimulation,
    ParticleSet,
    SimulationConfig,
    TimeStepper,
    run_simulation,
    zeldovich_ics,
)
from repro.hacc.mesh import cic_deposit, density_contrast


class TestParticleSet:
    def test_shapes_enforced(self):
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((3, 2)), np.zeros((3, 3)), np.arange(3))
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((3, 3)), np.zeros((2, 3)), np.arange(3))
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((3, 3)), np.zeros((3, 3)), np.arange(2))

    def test_select_and_concat(self):
        p = ParticleSet(np.arange(12.0).reshape(4, 3), np.zeros((4, 3)), np.arange(4))
        sub = p.select(np.array([True, False, True, False]))
        assert list(sub.ids) == [0, 2]
        cat = ParticleSet.concatenate([sub, p.select(np.array([1, 3]))])
        assert sorted(cat.ids) == [0, 1, 2, 3]

    def test_empty(self):
        e = ParticleSet.empty()
        assert len(e) == 0
        assert len(ParticleSet.concatenate([e, e])) == 0

    def test_select_copies(self):
        p = ParticleSet(np.zeros((2, 3)), np.zeros((2, 3)), np.arange(2))
        s = p.select(np.array([0]))
        s.positions += 1.0
        assert p.positions[0, 0] == 0.0


class TestZeldovichICs:
    def test_layout(self):
        ics = zeldovich_ics(8, LCDM(), a_init=0.02, seed=1)
        assert len(ics) == 512
        assert np.all(ics.positions >= 0) and np.all(ics.positions < 8)
        assert len(np.unique(ics.ids)) == 512

    def test_small_initial_displacements(self):
        # At z=49 displacements are a small fraction of the grid spacing.
        ics = zeldovich_ics(16, LCDM(), a_init=0.02, seed=2)
        lattice = np.mgrid[0:16, 0:16, 0:16].reshape(3, -1).T.astype(float)
        from repro.diy.bounds import Bounds, minimum_image

        d = minimum_image(ics.positions - lattice, Bounds.cube(16.0))
        assert np.abs(d).max() < 1.0

    def test_deterministic_by_seed(self):
        a = zeldovich_ics(8, LCDM(), 0.02, seed=7)
        b = zeldovich_ics(8, LCDM(), 0.02, seed=7)
        c = zeldovich_ics(8, LCDM(), 0.02, seed=8)
        np.testing.assert_array_equal(a.positions, b.positions)
        assert not np.allclose(a.positions, c.positions)

    def test_velocity_displacement_alignment(self):
        # Zel'dovich momenta are parallel to displacements (both ∝ psi).
        ics = zeldovich_ics(8, LCDM(), 0.02, seed=3)
        lattice = np.mgrid[0:8, 0:8, 0:8].reshape(3, -1).T.astype(float)
        from repro.diy.bounds import Bounds, minimum_image

        disp = minimum_image(ics.positions - lattice, Bounds.cube(8.0))
        big = np.linalg.norm(disp, axis=1) > 1e-4
        cos = np.einsum("ij,ij->i", disp[big], ics.velocities[big]) / (
            np.linalg.norm(disp[big], axis=1)
            * np.linalg.norm(ics.velocities[big], axis=1)
        )
        assert np.all(cos > 0.999)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zeldovich_ics(1, LCDM(), 0.02)
        with pytest.raises(ValueError):
            zeldovich_ics(8, LCDM(), 0.0)


class TestTimeStepper:
    def test_schedule(self):
        ts = TimeStepper(0.02, 1.0, 49)
        assert ts.da == pytest.approx(0.02)
        assert ts.a_at(0) == 0.02
        assert ts.a_at(49) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            TimeStepper(0.5, 0.2, 10)
        with pytest.raises(ValueError):
            TimeStepper(0.02, 1.0, 0)
        with pytest.raises(ValueError):
            TimeStepper(0.02, 1.0, 10).a_at(11)


class TestSimulation:
    def test_particle_count_conserved(self):
        cfg = SimulationConfig(np_side=8, nsteps=5)
        final = run_simulation(cfg)
        assert len(final) == 512
        assert sorted(final.ids) == list(range(512))

    def test_positions_stay_in_box(self):
        cfg = SimulationConfig(np_side=8, nsteps=10)
        final = run_simulation(cfg)
        assert np.all(final.positions >= 0)
        assert np.all(final.positions < 8)

    def test_structure_grows(self):
        cfg = SimulationConfig(np_side=16, nsteps=30, seed=1)
        sim = HACCSimulation(cfg)
        d0 = density_contrast(cic_deposit(sim.local.positions, 16)).std()
        sim.run()
        d1 = density_contrast(cic_deposit(sim.local.positions, 16)).std()
        assert d1 > 5 * d0  # strong nonlinear growth by z=0

    def test_parallel_matches_serial(self):
        cfg = SimulationConfig(np_side=8, nsteps=10, seed=3)
        serial = run_simulation(cfg)
        par = run_simulation(cfg, nranks=4)
        assert len(par) == len(serial)
        s = serial.positions[np.argsort(serial.ids)]
        p = par.positions[np.argsort(par.ids)]
        np.testing.assert_allclose(p, s, atol=1e-10)

    def test_parallel_ownership_invariant(self):
        cfg = SimulationConfig(np_side=8, nsteps=5, seed=2)

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.run()
            owners = sim.decomposition.locate(sim.positions_mpc())
            return bool(np.all(owners == sim.gid)), len(sim.local)

        out = run_parallel(4, worker)
        assert all(ok for ok, _ in out)
        assert sum(n for _, n in out) == 512

    def test_hooks_fire_at_selected_steps(self):
        cfg = SimulationConfig(np_side=8, nsteps=6)
        seen = []

        def hook(sim, step, a):
            seen.append((step, round(a, 6)))

        sim = HACCSimulation(cfg)
        sim.run(hooks={0: [hook], 3: [hook], 6: [hook]})
        assert [s for s, _ in seen] == [0, 3, 6]
        assert seen[-1][1] == pytest.approx(1.0)

    def test_hooks_every_step(self):
        cfg = SimulationConfig(np_side=8, nsteps=4)
        count = []
        sim = HACCSimulation(cfg)
        sim.run(hooks=[lambda s, i, a: count.append(i)])
        assert count == [1, 2, 3, 4]

    def test_step_past_end_raises(self):
        cfg = SimulationConfig(np_side=8, nsteps=2)
        sim = HACCSimulation(cfg)
        sim.run()
        with pytest.raises(RuntimeError):
            sim.step()

    def test_step_records(self):
        cfg = SimulationConfig(np_side=8, nsteps=3)
        sim = HACCSimulation(cfg)
        sim.run()
        assert len(sim.step_records) == 3
        assert sim.simulation_seconds() > 0

    def test_energy_like_sanity_momentum(self):
        """Total momentum stays near zero (translation invariance)."""
        cfg = SimulationConfig(np_side=16, nsteps=20, seed=5)
        sim = HACCSimulation(cfg)
        p0 = np.abs(sim.local.velocities.sum(axis=0)).max()
        sim.run()
        p1 = np.abs(sim.local.velocities.sum(axis=0)).max()
        # Momentum conservation up to FFT/CIC roundoff accumulation.
        assert p1 < max(10 * p0, 1e-8) + 1e-6 * len(sim.local)

    def test_mismatched_decomposition_rejected(self):
        from repro.diy.bounds import Bounds
        from repro.diy.decomposition import Decomposition

        cfg = SimulationConfig(np_side=8, nsteps=2)
        decomp = Decomposition(Bounds.cube(8.0), (2, 1, 1))
        with pytest.raises(ValueError):
            HACCSimulation(cfg, comm=None, decomposition=decomp)

    def test_num_global(self):
        cfg = SimulationConfig(np_side=8, nsteps=1)

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            return sim.num_global()

        assert run_parallel(2, worker) == [512, 512]
