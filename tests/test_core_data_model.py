"""Direct tests of the block data model (repro.core.data_model)."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.core import tessellate
from repro.core.cell import VoronoiCell
from repro.core.data_model import (
    BlockSizeReport,
    VoronoiBlock,
    connectivity_index_dtype,
    index_in_sorted,
    isin_sorted,
)
from repro.geometry.polyhedron import ConvexPolyhedron


def cube_cell(site_id: int, origin: float, size: float = 1.0) -> VoronoiCell:
    poly = ConvexPolyhedron.from_bounds(Bounds.cube(size, origin=origin))
    return VoronoiCell(
        site_id=site_id,
        site=np.full(3, origin + size / 2),
        vertices=poly.vertices,
        faces=poly.faces,
        neighbor_ids=np.arange(6, dtype=np.int64) + 100,
        volume=size**3,
        area=6 * size**2,
    )


class TestFromCells:
    def test_empty(self):
        b = VoronoiBlock.from_cells(0, Bounds.cube(1.0), [])
        assert b.num_cells == 0
        assert b.num_faces == 0
        assert b.num_vertices == 0
        assert b.faces_per_cell() == 0.0
        assert b.vertices_per_face() == 0.0
        assert b.vertex_sharing() == 0.0

    def test_single_cube(self):
        b = VoronoiBlock.from_cells(0, Bounds.cube(2.0), [cube_cell(7, 0.0)])
        assert b.num_cells == 1
        assert b.num_faces == 6
        assert b.num_vertices == 8
        assert b.faces_per_cell() == 6.0
        assert b.vertices_per_face() == 4.0
        assert b.vertex_sharing() == pytest.approx(24 / 8)
        np.testing.assert_array_equal(b.site_ids, [7])
        np.testing.assert_array_equal(
            np.sort(b.neighbors_of_cell(0)), np.arange(6) + 100
        )

    def test_adjacent_cubes_share_vertices(self):
        """Two unit cubes sharing a face pool their common 4 vertices."""
        cells = [cube_cell(1, 0.0), cube_cell(2, 1.0)]
        b = VoronoiBlock.from_cells(0, Bounds.cube(3.0), cells)
        # 8 + 8 corners with 4 shared (the cubes touch at one corner-face?
        # origin 0 cube spans [0,1]^3, origin 1 spans [1,2]^3: they share
        # exactly one corner point (1,1,1).
        assert b.num_vertices == 15
        assert b.num_cells == 2

    def test_cells_roundtrip(self):
        cells = [cube_cell(3, 0.0), cube_cell(9, 2.0)]
        b = VoronoiBlock.from_cells(1, Bounds.cube(4.0), cells)
        back = b.cells()
        assert [c.site_id for c in back] == [3, 9]
        for orig, rec in zip(cells, back):
            assert rec.volume == pytest.approx(orig.volume)
            assert rec.area == pytest.approx(orig.area)
            assert rec.num_faces == orig.num_faces
            np.testing.assert_array_equal(
                np.sort(rec.neighbor_ids), np.sort(orig.neighbor_ids)
            )
            # Same vertex sets (order may change through the pool).
            a = {tuple(np.round(v, 9)) for v in orig.vertices}
            z = {tuple(np.round(v, 9)) for v in rec.vertices}
            assert a == z

    def test_to_from_arrays_roundtrip(self):
        cells = [cube_cell(5, 0.0)]
        b = VoronoiBlock.from_cells(2, Bounds.cube(2.0), cells)
        back = VoronoiBlock.from_arrays(b.to_arrays())
        assert back.gid == 2
        assert back.extents == b.extents
        np.testing.assert_array_equal(back.face_vertices, b.face_vertices)
        np.testing.assert_array_equal(back.volumes, b.volumes)


class TestConnectivityDtype:
    def test_small_blocks_stay_int32(self):
        b = VoronoiBlock.from_cells(0, Bounds.cube(2.0), [cube_cell(7, 0.0)])
        assert b.face_vertices.dtype == np.int32
        assert b.face_offsets.dtype == np.int32
        assert b.cell_face_offsets.dtype == np.int32

    def test_dtype_selection_boundary(self):
        """int32 holds values up to 2**31 - 1; one past that widens."""
        assert connectivity_index_dtype(2**31 - 1) == np.int32
        assert connectivity_index_dtype(2**31) == np.int64
        assert connectivity_index_dtype(0) == np.int32

    def test_from_arrays_roundtrips_wide_dtype(self):
        """A block assembled with int64 connectivity must survive the
        to_arrays/from_arrays cycle without silent renarrowing."""
        b = VoronoiBlock.from_cells(0, Bounds.cube(2.0), [cube_cell(7, 0.0)])
        arrays = b.to_arrays()
        for name in ("face_vertices", "face_offsets", "cell_face_offsets"):
            arrays[name] = arrays[name].astype(np.int64)
        back = VoronoiBlock.from_arrays(arrays)
        assert back.face_vertices.dtype == np.int64
        assert back.face_offsets.dtype == np.int64
        assert back.cell_face_offsets.dtype == np.int64
        again = VoronoiBlock.from_arrays(back.to_arrays())
        assert again.face_vertices.dtype == np.int64


class TestIsinSorted:
    def test_basic_membership(self):
        kept = np.array([2, 5, 9], dtype=np.int64)
        values = np.array([-1, 2, 3, 5, 9, 10], dtype=np.int64)
        np.testing.assert_array_equal(
            isin_sorted(values, kept),
            [False, True, False, True, True, False],
        )

    def test_empty_sets(self):
        assert isin_sorted(np.array([1, 2]), np.empty(0, np.int64)).sum() == 0
        assert len(isin_sorted(np.empty(0, np.int64), np.array([1]))) == 0


class TestIndexInSorted:
    def check(self, values, kept):
        """Both strategies must agree with the obvious per-element answer."""
        pos, mask = index_in_sorted(values, kept)
        lookup = {int(v): i for i, v in enumerate(kept)}
        for v, p, m in zip(values.tolist(), pos.tolist(), mask.tolist()):
            assert m == (v in lookup)
            if m:
                assert p == lookup[v]
            else:
                assert p == 0  # clamped, safe for fancy indexing

    def test_dense_table_branch(self):
        kept = np.array([3, 4, 6, 9], dtype=np.int64)  # span 7 <= 4 * len
        values = np.array([-5, 2, 3, 5, 6, 9, 10, 1000], dtype=np.int64)
        self.check(values, kept)

    def test_sparse_searchsorted_branch(self):
        kept = np.array([0, 2**40, 2**62], dtype=np.int64)  # huge span
        values = np.array([-1, 0, 5, 2**40, 2**62, 2**62 + 1], dtype=np.int64)
        self.check(values, kept)

    def test_branches_agree_randomly(self):
        rng = np.random.default_rng(0)
        kept_dense = np.unique(rng.integers(0, 300, size=100))
        kept_sparse = np.unique(rng.integers(0, 2**60, size=100))
        for kept in (kept_dense, kept_sparse):
            lo, hi = int(kept[0]) - 5, int(kept[-1]) + 5
            values = rng.integers(lo, hi, size=500)
            values[:50] = rng.choice(kept, size=50)  # guarantee some hits
            self.check(values, kept)
            pos, mask = index_in_sorted(values, kept)
            np.testing.assert_array_equal(mask, isin_sorted(values, kept))
            np.testing.assert_array_equal(kept[pos[mask]], values[mask])

    def test_empty(self):
        pos, mask = index_in_sorted(np.array([1, 2]), np.empty(0, np.int64))
        assert mask.sum() == 0 and len(pos) == 2
        pos, mask = index_in_sorted(np.empty(0, np.int64), np.array([1]))
        assert len(pos) == 0 and len(mask) == 0


class TestSizeReport:
    def test_breakdown_sums(self):
        pts = np.random.default_rng(0).uniform(0, 8, (300, 3))
        tess = tessellate(pts, Bounds.cube(8.0), nblocks=1, ghost=3.0)
        rep = tess.blocks[0].size_report()
        assert rep.total_bytes == rep.geometry_bytes + rep.connectivity_bytes
        assert 0.0 < rep.geometry_fraction < 1.0

    def test_empty_report(self):
        rep = BlockSizeReport(0, 0)
        assert rep.total_bytes == 0
        assert rep.geometry_fraction == 0.0

    def test_connectivity_dominates_realistic_blocks(self):
        pts = np.random.default_rng(1).uniform(0, 10, (500, 3))
        tess = tessellate(pts, Bounds.cube(10.0), nblocks=2, ghost=3.5)
        for b in tess.blocks:
            assert b.size_report().geometry_fraction < 0.5


class TestCellProperties:
    def test_density_and_neighbors(self):
        c = cube_cell(1, 0.0, size=2.0)
        assert c.density == pytest.approx(1.0 / 8.0)
        np.testing.assert_array_equal(c.real_neighbors(), c.neighbor_ids)

    def test_wall_neighbors_filtered(self):
        c = cube_cell(1, 0.0)
        c.neighbor_ids = np.array([5, -1, 7, -2, 9, -3], dtype=np.int64)
        np.testing.assert_array_equal(c.real_neighbors(), [5, 7, 9])

    def test_degenerate_geometry_rejected(self):
        from repro.core.cell import VoronoiCell
        from repro.geometry.voronoi_cells import VoronoiCellGeometry

        geom = VoronoiCellGeometry(site=0, polyhedron=None, complete=False)
        with pytest.raises(ValueError):
            VoronoiCell.from_geometry(geom, np.zeros(3), np.arange(1), 0)

    def test_zero_volume_density_inf(self):
        c = cube_cell(1, 0.0)
        c.volume = 0.0
        assert c.density == np.inf
