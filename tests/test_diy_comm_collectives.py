"""Tests for the scalable communication layer: tag-space isolation,
tree collectives vs. the linear reference oracles, the sparse exchange
path, and the CommStats observability counters."""

import time

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.diy.comm import (
    ANY_SOURCE,
    ANY_TAG,
    ParallelError,
    Request,
    run_parallel,
)
from repro.diy.decomposition import Decomposition
from repro.diy.exchange import NeighborExchanger


class TestTagIsolation:
    def test_wildcard_recv_cannot_steal_collective_traffic(self):
        """Regression: a user recv(ANY_SOURCE, ANY_TAG) posted while a
        collective's internal message sits in the mailbox must match the
        user message, not the collective payload.

        On the old single-channel matching logic the wildcard matched the
        first arrival — the bcast payload — silently corrupting both the
        user receive and the broadcast."""

        def worker(comm):
            if comm.rank == 0:
                comm.bcast("collective-secret", root=0)
                comm.send("user-msg", dest=1, tag=5)
                comm.send("ready", dest=1, tag=7)
                return None
            comm.recv(source=0, tag=7)  # both earlier messages have arrived
            payload, src, tag = comm.recv_with_status(ANY_SOURCE, ANY_TAG)
            got = comm.bcast(None, root=0)
            return payload, src, tag, got

        payload, src, tag, got = run_parallel(2, worker)[1]
        assert payload == "user-msg"
        assert (src, tag) == (0, 5)
        assert got == "collective-secret"

    def test_wildcard_recv_during_repeated_collectives(self):
        """Wildcard receives interleaved with many collectives stay clean."""

        def worker(comm):
            out = []
            for i in range(20):
                if comm.rank == 0:
                    comm.send(("user", i), dest=1, tag=3)
                total = comm.allreduce(1)
                assert total == comm.size
                if comm.rank == 1:
                    out.append(comm.recv(ANY_SOURCE, ANY_TAG))
            return out

        out = run_parallel(3, worker)[1]
        assert out == [("user", i) for i in range(20)]


# Non-commutative ops exercise the rank-order guarantee: string
# concatenation distinguishes every combine order.
def _concat(a, b):
    return a + b


class TestTreeVsLinearOracles:
    """Tree collectives must produce results identical to the original
    linear algorithms, for every size 1-9 and every root."""

    SIZES = list(range(1, 10))

    @pytest.mark.parametrize("n", SIZES)
    def test_bcast(self, n):
        def worker(comm):
            for root in range(comm.size):
                value = {"root": root, "data": list(range(root))}
                tree = comm.bcast(value if comm.rank == root else None, root=root)
                lin = comm.linear_bcast(value if comm.rank == root else None, root=root)
                assert tree == lin == value
            return True

        assert all(run_parallel(n, worker))

    @pytest.mark.parametrize("n", SIZES)
    def test_gather(self, n):
        def worker(comm):
            for root in range(comm.size):
                tree = comm.gather(f"r{comm.rank}", root=root)
                lin = comm.linear_gather(f"r{comm.rank}", root=root)
                assert tree == lin
                if comm.rank == root:
                    assert tree == [f"r{i}" for i in range(comm.size)]
                else:
                    assert tree is None
            return True

        assert all(run_parallel(n, worker))

    @pytest.mark.parametrize("n", SIZES)
    def test_scatter(self, n):
        def worker(comm):
            for root in range(comm.size):
                objs = [i * 10 for i in range(comm.size)] if comm.rank == root else None
                tree = comm.scatter(objs, root=root)
                objs = [i * 10 for i in range(comm.size)] if comm.rank == root else None
                lin = comm.linear_scatter(objs, root=root)
                assert tree == lin == comm.rank * 10
            return True

        assert all(run_parallel(n, worker))

    @pytest.mark.parametrize("n", SIZES)
    def test_reduce_non_commutative(self, n):
        def worker(comm):
            for root in range(comm.size):
                tree = comm.reduce(f"[{comm.rank}]", op=_concat, root=root)
                lin = comm.linear_reduce(f"[{comm.rank}]", op=_concat, root=root)
                assert tree == lin
                if comm.rank == root:
                    assert tree == "".join(f"[{i}]" for i in range(comm.size))
            return True

        assert all(run_parallel(n, worker))

    @pytest.mark.parametrize("n", SIZES)
    def test_allreduce_non_commutative(self, n):
        def worker(comm):
            tree = comm.allreduce(f"[{comm.rank}]", op=_concat)
            lin = comm.linear_allreduce(f"[{comm.rank}]", op=_concat)
            assert tree == lin
            return tree

        expected = "".join(f"[{i}]" for i in range(n))
        assert run_parallel(n, worker) == [expected] * n

    @pytest.mark.parametrize("n", SIZES)
    def test_allreduce_numpy_sum(self, n):
        def worker(comm):
            vec = np.full(4, float(comm.rank + 1))
            return comm.allreduce(vec)

        total = n * (n + 1) / 2
        for row in run_parallel(n, worker):
            np.testing.assert_allclose(row, total)

    @pytest.mark.parametrize("n", SIZES)
    def test_allgather(self, n):
        def worker(comm):
            tree = comm.allgather((comm.rank, "x" * comm.rank))
            lin = comm.linear_allgather((comm.rank, "x" * comm.rank))
            assert tree == lin
            return tree

        expected = [(i, "x" * i) for i in range(n)]
        assert run_parallel(n, worker) == [expected] * n

    @pytest.mark.parametrize("n", SIZES)
    def test_exscan_non_commutative(self, n):
        def worker(comm):
            tree = comm.exscan(f"[{comm.rank}]", op=_concat)
            lin = comm.linear_exscan(f"[{comm.rank}]", op=_concat)
            assert tree == lin
            return tree

        out = run_parallel(n, worker)
        assert out[0] is None
        for r in range(1, n):
            assert out[r] == "".join(f"[{i}]" for i in range(r))

    @pytest.mark.parametrize("n", SIZES)
    def test_exscan_offsets(self, n):
        """The parallel-writer use case: byte counts to file offsets."""

        def worker(comm):
            return comm.exscan(100 * (comm.rank + 1))

        out = run_parallel(n, worker)
        assert out[0] is None
        for r in range(1, n):
            assert out[r] == sum(100 * (i + 1) for i in range(r))

    def test_tree_message_counts_logarithmic(self):
        """The busiest rank sends/receives O(log P), not O(P)."""

        def worker(comm):
            s0 = comm.stats.snapshot()
            comm.bcast("x" if comm.rank == 0 else None, root=0)
            bcast_sent = comm.stats.since(s0).msgs_sent
            s1 = comm.stats.snapshot()
            comm.linear_bcast("x" if comm.rank == 0 else None, root=0)
            linear_sent = comm.stats.since(s1).msgs_sent
            return bcast_sent, linear_sent

        n = 8
        out = run_parallel(n, worker)
        assert max(t for t, _ in out) == 3  # log2(8)
        assert max(l for _, l in out) == n - 1  # root funnels to everyone


class TestTwoLevelTopology:
    """The topology-aware (group + leader) collectives: group sizing,
    the REPRO_COLL_GROUP override, and exactness against the linear
    oracles for uneven group widths."""

    def test_auto_group_sizes(self):
        from repro.diy.comm import _coll_group_size

        # Below four ranks there is nothing to amortize.
        assert [_coll_group_size(n) for n in (1, 2, 3)] == [1, 1, 1]
        # Largest power of two <= sqrt(size) keeps both trees balanced.
        assert _coll_group_size(4) == 2
        assert _coll_group_size(8) == 2
        assert _coll_group_size(16) == 4
        assert _coll_group_size(64) == 8
        assert _coll_group_size(100) == 8

    def test_env_override_clamped(self, monkeypatch):
        from repro.diy.comm import _coll_group_size

        monkeypatch.setenv("REPRO_COLL_GROUP", "3")
        assert _coll_group_size(6) == 3
        monkeypatch.setenv("REPRO_COLL_GROUP", "99")
        assert _coll_group_size(6) == 6  # clamped to size
        monkeypatch.setenv("REPRO_COLL_GROUP", "1")
        assert _coll_group_size(6) == 1  # grouping disabled
        monkeypatch.setenv("REPRO_COLL_GROUP", "garbage")
        assert _coll_group_size(6) == 2  # fall back to the auto rule

    @pytest.mark.parametrize("group", ["1", "2", "3", "4"])
    def test_forced_group_widths_match_oracles(self, group, monkeypatch):
        """Every group width — including uneven trailing groups (3 on 6
        ranks leaves none, 4 leaves a half group) — must reproduce the
        linear reference results exactly, non-commutative ops included."""
        monkeypatch.setenv("REPRO_COLL_GROUP", group)

        def worker(comm):
            for root in range(comm.size):
                v = {"root": root}
                assert comm.bcast(v if comm.rank == root else None, root=root) == v
                assert comm.gather(f"r{comm.rank}", root=root) == (
                    [f"r{i}" for i in range(comm.size)]
                    if comm.rank == root else None
                )
                tree = comm.reduce(f"[{comm.rank}]", op=_concat, root=root)
                if comm.rank == root:
                    assert tree == "".join(f"[{i}]" for i in range(comm.size))
            assert comm.allreduce(f"[{comm.rank}]", op=_concat) == "".join(
                f"[{i}]" for i in range(comm.size)
            )
            return True

        assert all(run_parallel(6, worker))

    def test_busiest_rank_message_count_stays_logarithmic(self):
        """At 8 ranks the two-level bcast must not regress the O(log P)
        bound the flat tree achieved (the root still sends exactly 3)."""

        def worker(comm):
            s0 = comm.stats.snapshot()
            comm.bcast("x" if comm.rank == 0 else None, root=0)
            return comm.stats.since(s0).msgs_sent

        assert max(run_parallel(8, worker)) == 3


class TestSparseExchange:
    def test_sparse_matches_dense_periodic_2x2x2(self):
        decomp = Decomposition(Bounds.cube(8.0), (2, 2, 2), periodic=True)

        def worker(comm, dense):
            ex = NeighborExchanger(decomp, comm)
            gid = comm.rank
            for link in decomp.block(gid).links:
                ex.enqueue(gid, link, (gid, link.gid, tuple(link.direction)))
            inbox = ex.exchange(dense=dense)
            return inbox[gid]

        dense = run_parallel(8, worker, True)
        sparse = run_parallel(8, worker, False)
        assert sparse == dense
        assert all(len(batch) > 0 for batch in sparse)

    def test_sparse_skips_silent_ranks(self):
        """Only ranks with queued payloads send payload messages."""
        decomp = Decomposition(Bounds.cube(8.0), (4, 1, 1), periodic=False)

        def worker(comm):
            ex = NeighborExchanger(decomp, comm)
            gid = comm.rank
            if gid == 0:  # only block 0 talks, to its single +x neighbor
                link = next(l for l in decomp.block(0).links if l.gid == 1)
                ex.enqueue(0, link, "hello")
            s0 = comm.stats.snapshot()
            inbox = ex.exchange()
            delta = comm.stats.since(s0)
            return inbox[gid], delta.as_dict()

        out = run_parallel(4, worker)
        assert out[1][0] == [(0, "hello")]
        assert all(out[r][0] == [] for r in (0, 2, 3))
        # Header allreduce only: sparse payload messages on the silent ranks
        # are exactly zero, so their traffic is the O(log P) header round.
        payload_msgs = [out[r][1]["msgs_sent"] for r in range(4)]
        dense_msgs = 3  # what alltoall would cost every rank
        assert payload_msgs[0] <= dense_msgs + 2  # header + 1 payload
        for r in (2, 3):
            assert payload_msgs[r] <= dense_msgs  # no payload sends at all

    def test_sparse_empty_everywhere(self):
        decomp = Decomposition(Bounds.cube(8.0), (2, 1, 1), periodic=False)

        def worker(comm):
            ex = NeighborExchanger(decomp, comm)
            return ex.exchange()

        out = run_parallel(2, worker)
        assert out == [{0: []}, {1: []}]

    def test_ghost_exchange_dense_flag_equivalent(self):
        decomp = Decomposition(Bounds.cube(4.0), (2, 2, 2), periodic=True)
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 4.0, size=(160, 3))
        ids = np.arange(160, dtype=np.int64)
        owners = decomp.locate(pts)

        from repro.core.ghost import exchange_ghost_particles

        def worker(comm, dense):
            mine = owners == comm.rank
            gpos, gids = exchange_ghost_particles(
                decomp, comm, comm.rank, pts[mine], ids[mine], ghost=1.0,
                dense=dense,
            )
            return np.sort(gids), np.round(gpos[np.argsort(gids)], 9)

        dense = run_parallel(8, worker, True)
        sparse = run_parallel(8, worker, False)
        for (di, dp), (si, sp) in zip(dense, sparse):
            np.testing.assert_array_equal(di, si)
            assert len(di) > 0


class TestCommStats:
    def test_p2p_counters(self):
        payload = np.arange(10, dtype=np.float64)  # 80 bytes

        def worker(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1, tag=1)
            else:
                comm.recv(source=0, tag=1)
            return comm.stats.as_dict()

        s0, s1 = run_parallel(2, worker)
        assert s0["msgs_sent"] == 1 and s0["bytes_sent"] == 80
        assert s0["msgs_recv"] == 0
        assert s1["msgs_recv"] == 1 and s1["bytes_recv"] == 80
        assert s1["msgs_sent"] == 0

    def test_collective_call_counts(self):
        def worker(comm):
            comm.bcast(1, root=0)
            comm.bcast(2, root=0)
            comm.allreduce(3)
            comm.barrier()
            return dict(comm.stats.collective_calls)

        for calls in run_parallel(3, worker):
            assert calls["bcast"] == 2
            assert calls["allreduce"] == 1
            assert calls["barrier"] == 1

    def test_recv_wait_time_recorded(self):
        def worker(comm):
            if comm.rank == 0:
                time.sleep(0.08)
                comm.send("late", dest=1, tag=1)
                return 0.0
            comm.recv(source=0, tag=1)
            return comm.stats.recv_wait_s

        waited = run_parallel(2, worker)[1]
        assert waited >= 0.05

    def test_snapshot_since_isolates_regions(self):
        def worker(comm):
            comm.allreduce(1)
            before = comm.stats.snapshot()
            comm.allreduce(2)
            delta = comm.stats.since(before)
            return delta.collective_calls.get("allreduce")

        assert run_parallel(2, worker) == [1, 1]

    def test_tessellation_timings_carry_comm_counters(self):
        from repro.core import tessellate

        rng = np.random.default_rng(11)
        pts = rng.uniform(0, 8.0, size=(300, 3))
        tess = tessellate(pts, Bounds.cube(8.0), nblocks=2, ghost=3.0)
        t = tess.timings
        assert t.msgs_sent > 0 and t.msgs_recv > 0
        assert t.bytes_sent > 0
        assert t.comm_wait >= 0.0
        # The paper-table row keys are unchanged.
        assert sorted(t.as_row()) == [
            "compute_s", "exchange_s", "output_s", "tess_total_s", "wall_total_s",
        ]


class TestRequest:
    def test_isend_returns_completed_request(self):
        def worker(comm):
            if comm.rank == 0:
                req = comm.isend({"k": 1}, dest=1, tag=2)
                assert isinstance(req, Request)
                assert req.wait() is None
                flag, _ = req.test()
                assert flag
                return True
            return comm.recv(source=0, tag=2)

        out = run_parallel(2, worker)
        assert out == [True, {"k": 1}]


class TestConfigurableTimeout:
    def test_recv_timeout_argument(self):
        def worker(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=9)  # never sent

        t0 = time.perf_counter()
        with pytest.raises(ParallelError) as exc:
            run_parallel(2, worker, recv_timeout=0.2)
        assert isinstance(exc.value.original, TimeoutError)
        assert time.perf_counter() - t0 < 30.0
