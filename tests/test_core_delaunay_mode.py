"""Tests for the parallel Delaunay mode and the cell-field sampler."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.core import tessellate
from repro.core.delaunay_mode import tessellate_delaunay
from repro.analysis.field import deposit_to_grid, sample_cells


def poisson(n, size, seed):
    return np.random.default_rng(seed).uniform(0, size, size=(n, 3))


class TestParallelDelaunay:
    def test_tets_tile_the_box(self):
        pts = poisson(400, 10.0, 0)
        dt = tessellate_delaunay(pts, Bounds.cube(10.0), nblocks=1, ghost=4.0)
        assert dt.num_tetrahedra > 0
        assert dt.total_volume() == pytest.approx(1000.0, rel=1e-9)

    @pytest.mark.parametrize("nblocks", [2, 4, 8])
    def test_block_count_invariance(self, nblocks):
        """The owned tet set is identical for any decomposition."""
        pts = poisson(350, 10.0, 1)
        serial = tessellate_delaunay(pts, Bounds.cube(10.0), nblocks=1, ghost=4.0)
        par = tessellate_delaunay(
            pts, Bounds.cube(10.0), nblocks=nblocks, ghost=4.0
        )
        assert par.total_volume() == pytest.approx(serial.total_volume(), rel=1e-9)
        np.testing.assert_array_equal(
            par.all_tetrahedra(), serial.all_tetrahedra()
        )

    def test_no_duplicate_tets(self):
        pts = poisson(300, 8.0, 2)
        dt = tessellate_delaunay(pts, Bounds.cube(8.0), nblocks=4, ghost=3.0)
        tets = dt.all_tetrahedra()
        unique = np.unique(tets, axis=0)
        assert len(unique) == len(tets)

    def test_empty_circumsphere_property(self):
        """No particle may lie strictly inside any owned circumsphere."""

        pts = poisson(200, 8.0, 3)
        domain = Bounds.cube(8.0)
        dt = tessellate_delaunay(pts, domain, nblocks=2, ghost=3.5)
        from repro.diy.bounds import minimum_image

        for block in dt.blocks:
            for t in range(0, block.num_tetrahedra, 37):
                c = block.circumcenters[t]
                corner = pts[block.tetrahedra[t, 0] % len(pts)]
                r = np.linalg.norm(minimum_image(corner - c, domain))
                d = np.linalg.norm(minimum_image(pts - c, domain), axis=1)
                # Tolerate the 4 defining vertices on the sphere itself.
                assert (d < r - 1e-9).sum() == 0

    def test_defaults_and_validation(self):
        pts = poisson(100, 6.0, 4)
        dt = tessellate_delaunay(pts, Bounds.cube(6.0))  # default ghost
        assert dt.total_volume() == pytest.approx(216.0, rel=1e-9)
        with pytest.raises(ValueError):
            tessellate_delaunay(np.zeros((5, 2)), Bounds.cube(1.0))
        with pytest.raises(ValueError):
            tessellate_delaunay(np.full((5, 3), 9.0), Bounds.cube(1.0))

    def test_dual_consistency_with_voronoi(self):
        """Delaunay edges are exactly the Voronoi face-adjacency graph."""
        pts = poisson(200, 8.0, 5)
        domain = Bounds.cube(8.0)
        dt = tessellate_delaunay(pts, domain, nblocks=1, ghost=3.5)
        vor = tessellate(pts, domain, nblocks=1, ghost=3.5)

        d_edges = set()
        for tet in dt.all_tetrahedra():
            for i in range(4):
                for j in range(i + 1, 4):
                    d_edges.add((min(tet[i], tet[j]), max(tet[i], tet[j])))
        v_edges = set()
        for block in vor.blocks:
            for i in range(block.num_cells):
                sid = int(block.site_ids[i])
                for nb in block.neighbors_of_cell(i):
                    nb = int(nb)
                    if nb >= 0:
                        v_edges.add((min(sid, nb), max(sid, nb)))
        assert d_edges == v_edges


class TestFieldSampling:
    def _tess(self, seed=0):
        pts = poisson(300, 8.0, seed)
        return tessellate(pts, Bounds.cube(8.0), nblocks=2, ghost=3.5), pts

    def test_sites_sample_their_own_cells(self):
        tess, pts = self._tess(1)
        sites = np.concatenate([b.sites for b in tess.blocks])
        vols = sample_cells(tess, sites, value="volume")
        np.testing.assert_allclose(vols, tess.volumes())

    def test_density_is_inverse_volume(self):
        tess, pts = self._tess(2)
        q = np.random.default_rng(0).uniform(0, 8, (50, 3))
        d = sample_cells(tess, q, value="density")
        v = sample_cells(tess, q, value="volume")
        np.testing.assert_allclose(d, 1.0 / v)

    def test_custom_per_cell_values(self):
        tess, _ = self._tess(3)
        labels = np.arange(tess.num_cells, dtype=float)
        sites = np.concatenate([b.sites for b in tess.blocks])
        got = sample_cells(tess, sites, value=labels)
        np.testing.assert_allclose(got, labels)

    def test_periodic_queries_wrap(self):
        tess, _ = self._tess(4)
        q = np.array([[1.0, 2.0, 3.0]])
        a = sample_cells(tess, q)
        b = sample_cells(tess, q + 8.0)  # one box over
        np.testing.assert_allclose(a, b)

    def test_volume_weighted_grid_mean(self):
        """Sampling 'volume' on a fine grid estimates E_volume-weighted[V]."""
        tess, _ = self._tess(5)
        grid = deposit_to_grid(tess, grid_size=24, value="volume")
        v = tess.volumes()
        expect = float((v * v).sum() / v.sum())  # volume-weighted mean
        assert grid.mean() == pytest.approx(expect, rel=0.1)

    def test_validation(self):
        tess, _ = self._tess(6)
        with pytest.raises(ValueError):
            sample_cells(tess, np.zeros((3, 2)))
        with pytest.raises(ValueError):
            sample_cells(tess, np.zeros((3, 3)), value="nope")
        with pytest.raises(ValueError):
            sample_cells(tess, np.zeros((3, 3)), value=np.ones(5))
        with pytest.raises(ValueError):
            deposit_to_grid(tess, 0)
