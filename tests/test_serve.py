"""Unit tests for repro.serve: cache, store, query kernels, protocol.

The three satellite contracts from the service PR are pinned here:

* cache eviction under byte pressure (LRU order, budget respected),
* miss coalescing (N concurrent misses for one key -> one load),
* ETag invalidation when a snapshot is republished (new etag, stale
  cache entries evicted, fresh handle serves the new content).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.analysis.query import (
    QueryError,
    region_bounds,
    run_query,
)
from repro.core import tessellate
from repro.diy.bounds import Bounds
from repro.serve.cache import BlockCache
from repro.serve.protocol import (
    HttpResponse,
    ProtocolError,
    read_request,
    read_response,
    render_request,
    render_response,
)
from repro.serve.store import CatalogError, CatalogStore, Snapshot

BOX = 8.0


def _points(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.0, BOX, size=(n, 3))


def _tess(n: int = 160, seed: int = 0, nblocks: int = 2):
    return tessellate(_points(n, seed), Bounds.cube(BOX), nblocks=nblocks)


@pytest.fixture(scope="module")
def catalog(tmp_path_factory):
    root = tmp_path_factory.mktemp("catalog")
    store = CatalogStore(root)
    for step in range(2):
        store.publish(step, _tess(seed=step))
    yield store
    store.close()


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def _loader(value, nbytes):
    return lambda: (value, nbytes)


class TestBlockCache:
    def test_hit_after_miss(self):
        cache = BlockCache(max_bytes=1000, nshards=1)
        assert cache.get("k", _loader("v", 10)) == "v"
        assert cache.get("k", _loader("OTHER", 10)) == "v"  # no reload
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.loads == 1
        assert cache.nbytes == 10

    def test_eviction_under_byte_pressure(self):
        cache = BlockCache(max_bytes=100, nshards=1)
        for i in range(4):  # 4 x 30 = 120 bytes > 100 budget
            cache.get(f"k{i}", _loader(i, 30))
        assert cache.stats.evictions == 1
        assert cache.nbytes <= 100
        assert "k0" not in cache  # LRU victim
        assert all(f"k{i}" in cache for i in (1, 2, 3))

    def test_eviction_respects_lru_recency(self):
        cache = BlockCache(max_bytes=100, nshards=1)
        for i in range(3):
            cache.get(f"k{i}", _loader(i, 30))
        cache.get("k0", _loader("X", 30))  # touch k0: now k1 is LRU
        cache.get("k3", _loader(3, 30))
        assert "k1" not in cache
        assert "k0" in cache

    def test_oversized_entry_not_admitted(self):
        cache = BlockCache(max_bytes=100, nshards=1)
        assert cache.get("big", _loader("v", 500)) == "v"
        assert "big" not in cache
        assert cache.stats.oversized == 1
        # a later request loads again rather than hitting
        cache.get("big", _loader("v", 500))
        assert cache.stats.loads == 2

    def test_miss_coalescing_one_load(self):
        import time

        cache = BlockCache(max_bytes=10_000, nshards=1)
        loads = []
        nthreads = 8

        def slow_loader():
            # Hold the load open until every other thread has arrived and
            # registered as a coalesced follower — they cannot hit (the
            # entry is not inserted yet) and cannot load (the key is in
            # the shard's loading map), so the condition must be reached.
            loads.append(1)
            deadline = time.monotonic() + 10.0
            while cache.stats.coalesced < nthreads - 1:
                assert time.monotonic() < deadline, "followers never arrived"
                time.sleep(0.001)
            return "shared", 8

        started = threading.Barrier(nthreads)

        def worker():
            started.wait()
            return cache.get("cold", slow_loader)

        with ThreadPoolExecutor(max_workers=nthreads) as pool:
            futs = [pool.submit(worker) for _ in range(nthreads)]
            results = [f.result(timeout=10) for f in futs]

        assert results == ["shared"] * nthreads
        assert len(loads) == 1
        assert cache.stats.loads == 1
        assert cache.stats.misses == 1
        assert cache.stats.coalesced == nthreads - 1

    def test_loader_failure_propagates_and_does_not_poison(self):
        cache = BlockCache(max_bytes=1000, nshards=1)

        def boom():
            raise OSError("disk on fire")

        with pytest.raises(OSError):
            cache.get("k", boom)
        # the failure is not cached: a retry runs the loader again
        assert cache.get("k", _loader("ok", 4)) == "ok"

    def test_evict_stale_by_etag(self):
        cache = BlockCache(max_bytes=10_000, nshards=2)
        for gid in range(3):
            cache.get(("old", gid), _loader(gid, 10))
            cache.get(("new", gid), _loader(gid, 10))
        dropped = cache.evict_stale({"new"})
        assert dropped == 3
        assert all(("new", g) in cache for g in range(3))
        assert all(("old", g) not in cache for g in range(3))
        assert cache.nbytes == 30


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------
class TestCatalogStore:
    def test_publish_and_manifest(self, catalog):
        assert catalog.steps() == [0, 1]
        manifest = catalog.manifest()
        assert len(manifest["snapshots"]) == 2
        assert manifest["etag"]
        for rec in manifest["snapshots"]:
            assert rec["nblocks"] == 2
            assert rec["etag"]

    def test_reopen_sees_published_snapshots(self, catalog):
        reopened = CatalogStore(catalog.root)
        try:
            assert reopened.steps() == catalog.steps()
            assert reopened.etags() == catalog.etags()
        finally:
            reopened.close()

    def test_missing_step_raises(self, catalog):
        with pytest.raises(CatalogError, match="no snapshot for step 99"):
            catalog.snapshot(99)

    def test_snapshot_region_index(self, catalog):
        snap = catalog.snapshot(0)
        assert snap.gids_for_region(None) == [0, 1]
        corner = Bounds.from_arrays([0.0] * 3, [0.1] * 3)
        gids = snap.gids_for_region(corner)
        assert len(gids) >= 1
        assert set(gids) <= {0, 1}
        assert snap.domain.volume == pytest.approx(BOX**3)

    def test_etag_mismatch_rejected(self, catalog):
        info = catalog.info(0)
        bad = type(info)(
            step=info.step, path=info.path, etag="0-0-deadbeef",
            nblocks=info.nblocks,
        )
        with pytest.raises(CatalogError, match="does not match"):
            Snapshot(bad, f"{catalog.root}/{info.path}")

    def test_republish_invalidates_etag_and_cache(self, tmp_path):
        store = CatalogStore(tmp_path)
        observer = CatalogStore(tmp_path)  # a second process's view
        try:
            info_v1 = store.publish(0, _tess(seed=10))
            observer.refresh(force=True)

            cache = BlockCache(max_bytes=10_000_000)
            snap_v1 = observer.snapshot(0)
            for gid in snap_v1.gids_for_region(None):
                cache.get(
                    (snap_v1.etag, gid), lambda g=gid: snap_v1.load_block(g)
                )
            assert len(cache) == info_v1.nblocks

            info_v2 = store.publish(0, _tess(seed=11))
            assert info_v2.etag != info_v1.etag

            # the observer notices the manifest change on refresh and the
            # cache reclaims every block keyed by the dead etag
            assert observer.refresh() is True
            assert observer.etags() == {info_v2.etag}
            assert cache.evict_stale(observer.etags()) == info_v1.nblocks
            assert cache.nbytes == 0

            # the fresh handle serves the republished content
            snap_v2 = observer.snapshot(0)
            assert snap_v2.etag == info_v2.etag
            assert snap_v2.reader.content_tag == info_v2.etag
        finally:
            observer.close()
            store.close()

    def test_refresh_without_change_is_noop(self, catalog):
        assert catalog.refresh() is False


# ----------------------------------------------------------------------
# query kernels
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def query_inputs(catalog):
    snap = catalog.snapshot(0)
    blocks = [snap.load_block(g)[0] for g in snap.gids_for_region(None)]
    return snap.domain, blocks


class TestQueries:
    def test_voids(self, query_inputs):
        domain, blocks = query_inputs
        out = run_query(domain, blocks, {"op": "voids"})
        assert out["op"] == "voids"
        assert out["num_voids"] >= 1
        assert out["vmin"] > 0
        assert out["total_volume"] > 0

    def test_components_and_minkowski(self, query_inputs):
        domain, blocks = query_inputs
        comp = run_query(domain, blocks, {"op": "components", "vmin": 0.0})
        assert comp["num_components"] >= 1
        assert comp["num_cells"] > 0
        mink = run_query(domain, blocks, {"op": "minkowski", "top": 2})
        assert len(mink["functionals"]) <= 2
        for rec in mink["functionals"]:
            assert {"V", "S", "genus"} <= set(rec)

    def test_halos(self, query_inputs):
        domain, blocks = query_inputs
        out = run_query(
            domain, blocks, {"op": "halos", "min_members": 2}
        )
        assert out["num_halos"] >= 0

    def test_profile(self, query_inputs):
        domain, blocks = query_inputs
        out = run_query(
            domain,
            blocks,
            {"op": "profile", "center": [4, 4, 4], "rmax": 2.0, "nbins": 6},
        )
        assert len(out["density"]) == 6
        assert len(out["r_edges"]) == 7

    def test_region_restriction_filters_features(self, query_inputs):
        domain, blocks = query_inputs
        full = run_query(domain, blocks, {"op": "voids", "vmin": 0.0})
        corner = run_query(
            domain, blocks,
            {"op": "voids", "vmin": 0.0, "region": [[0, 0, 0], [0.5] * 3]},
        )
        assert corner["num_voids"] <= full["num_voids"]
        assert full["num_voids"] >= 1

    def test_bad_specs_raise(self, query_inputs):
        domain, blocks = query_inputs
        for spec in (
            {"op": "explode"},
            {"op": "voids", "bogus_param": 1},
            {"op": "profile"},  # center/rmax required
            {"op": "profile", "center": [1, 2], "rmax": 1.0},  # bad dim
            {"op": "profile", "center": [1, 2, 3], "rmax": 1.0,
             "region": [[0, 0, 0], [1, 1, 1]]},  # region not allowed
            {},
        ):
            with pytest.raises(QueryError):
                run_query(domain, blocks, spec)

    def test_region_bounds_validation(self):
        domain = Bounds.cube(BOX)
        assert region_bounds(None, domain) is None
        got = region_bounds([[0, 0, 0], [20, 4, 4]], domain)
        assert got.max[0] == pytest.approx(BOX)  # clamped to the domain
        with pytest.raises(QueryError):
            region_bounds([[0, 0], [1, 1]], domain)  # wrong dim
        with pytest.raises(QueryError):
            region_bounds([[2, 2, 2], [1, 1, 1]], domain)  # hi < lo


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
def _feed(payload: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(payload)
    reader.feed_eof()
    return reader


class TestProtocol:
    def test_request_roundtrip(self):
        async def scenario():
            wire = render_request(
                "POST", "/query", b'{"op": "voids"}',
                headers={"x-extra": "1"},
            )
            req = await read_request(_feed(wire))
            assert req.method == "POST"
            assert req.path == "/query"
            assert req.headers["x-extra"] == "1"
            assert req.json() == {"op": "voids"}
            assert req.keep_alive

        asyncio.run(scenario())

    def test_response_roundtrip(self):
        async def scenario():
            wire = render_response(
                HttpResponse(status=200, headers={"etag": '"abc"'},
                             body=b'{"ok": true}')
            )
            resp = await read_response(_feed(wire))
            assert resp.status == 200
            assert resp.headers["etag"] == '"abc"'
            assert resp.json() == {"ok": True}

        asyncio.run(scenario())

    def test_clean_eof_returns_none(self):
        async def scenario():
            assert await read_request(_feed(b"")) is None

        asyncio.run(scenario())

    def test_malformed_frames_raise(self):
        async def scenario():
            with pytest.raises(ProtocolError, match="request line"):
                await read_request(_feed(b"NONSENSE\r\n\r\n"))
            with pytest.raises(ProtocolError, match="mid-headers"):
                await read_request(_feed(b"GET / HTTP/1.1\r\n"))
            with pytest.raises(ProtocolError, match="mid-body"):
                await read_request(
                    _feed(b"GET / HTTP/1.1\r\ncontent-length: 99\r\n\r\nhi")
                )
            with pytest.raises(ProtocolError, match="out of bounds"):
                await read_request(
                    _feed(
                        b"GET / HTTP/1.1\r\n"
                        b"content-length: 999999999999\r\n\r\n"
                    )
                )
            with pytest.raises((ProtocolError, ValueError)):
                req = await read_request(
                    _feed(b"POST /query HTTP/1.1\r\n"
                          b"content-length: 3\r\n\r\nhi{")
                )
                req.json()

        asyncio.run(scenario())
