"""Tests for the §V in situ tools: void finder, cell statistics, chaining."""

import pytest

from repro.hacc import SimulationConfig
from repro.insitu import run_simulation_with_tools
from repro.analysis import find_voids


class TestVoidFinderTool:
    def test_standalone_computes_own_tessellation(self):
        cfg = SimulationConfig(np_side=10, nsteps=10, seed=1)
        results = run_simulation_with_tools(
            cfg,
            {"tools": [{"tool": "void_finder",
                        "params": {"ghost": 4.0, "min_cells": 2}}]},
            nranks=2,
        )
        catalog = results["void_finder"][10]
        assert catalog.num_voids >= 1
        assert all(v.num_cells >= 2 for v in catalog.voids)

    def test_consumes_tessellation_context(self):
        """Chained after the tessellation tool, results match postprocessing
        of that tool's own output."""
        cfg = SimulationConfig(np_side=10, nsteps=8, seed=2)
        results = run_simulation_with_tools(
            cfg,
            {"tools": [
                {"tool": "tessellation", "params": {"ghost": 4.0}},
                {"tool": "void_finder", "params": {"vmin_fraction": 0.1}},
            ]},
            nranks=2,
        )
        tess = results["tessellation"][8]
        insitu_catalog = results["void_finder"][8]
        post_catalog = find_voids(tess)
        assert insitu_catalog.num_voids == post_catalog.num_voids
        assert insitu_catalog.vmin == pytest.approx(post_catalog.vmin)
        got = sorted(tuple(v.site_ids) for v in insitu_catalog.voids)
        want = sorted(tuple(v.site_ids) for v in post_catalog.voids)
        assert got == want

    def test_absolute_vmin_wins(self):
        cfg = SimulationConfig(np_side=10, nsteps=6, seed=3)
        results = run_simulation_with_tools(
            cfg,
            {"tools": [
                {"tool": "tessellation", "params": {"ghost": 4.0}},
                {"tool": "void_finder", "params": {"vmin": 0.9}},
            ]},
        )
        assert results["void_finder"][6].vmin == pytest.approx(0.9)

    def test_minkowski_attachment(self):
        cfg = SimulationConfig(np_side=10, nsteps=6, seed=4)
        results = run_simulation_with_tools(
            cfg,
            {"tools": [
                {"tool": "tessellation", "params": {"ghost": 4.0}},
                {"tool": "void_finder",
                 "params": {"compute_minkowski": True, "min_cells": 2}},
            ]},
        )
        catalog = results["void_finder"][6]
        for v in catalog.voids:
            assert v.minkowski is not None
            assert v.minkowski.volume == pytest.approx(v.volume, rel=1e-9)


class TestCellStatisticsTool:
    def test_histograms_from_context(self):
        cfg = SimulationConfig(np_side=10, nsteps=8, seed=5)
        results = run_simulation_with_tools(
            cfg,
            {"tools": [
                {"tool": "tessellation", "params": {"ghost": 4.0}},
                {"tool": "cell_statistics", "params": {"bins": 40}},
            ]},
            nranks=2,
        )
        stats = results["cell_statistics"][8]
        assert set(stats) == {"volume", "density_contrast"}
        tess = results["tessellation"][8]
        assert stats["volume"].n_samples == tess.num_cells
        assert len(stats["volume"].counts) == 40
        # delta histogram is centered: mean of delta is 0 by construction.
        assert stats["density_contrast"].mean == pytest.approx(0.0, abs=1e-9)

    def test_standalone_without_tessellation(self):
        cfg = SimulationConfig(np_side=8, nsteps=4, seed=6)
        results = run_simulation_with_tools(
            cfg,
            {"tools": [{"tool": "cell_statistics", "params": {"ghost": 3.5}}]},
        )
        stats = results["cell_statistics"][4]
        assert stats["volume"].n_samples == 512
