"""Tests for the compact tessellation encoding (repro.core.compact)."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diy.bounds import Bounds
from repro.core import tessellate
from repro.core.compact import (
    _read_varints,
    _unzigzag,
    _write_varints,
    _zigzag,
    compact_decode,
    compact_encode,
)
from repro.diy.mpi_io import pack_arrays


class TestVarints:
    @pytest.mark.parametrize(
        "values",
        [
            [],
            [0],
            [127],
            [128],
            [0, 1, 127, 128, 129, 16383, 16384],
            [2**40, 2**63 - 1],
        ],
    )
    def test_roundtrip_cases(self, values):
        buf = io.BytesIO()
        _write_varints(buf, np.asarray(values, dtype=np.uint64))
        buf.seek(0)
        out = _read_varints(buf)
        np.testing.assert_array_equal(out, np.asarray(values, dtype=np.uint64))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**62), max_size=200))
    def test_roundtrip_property(self, values):
        buf = io.BytesIO()
        _write_varints(buf, np.asarray(values, dtype=np.uint64))
        buf.seek(0)
        np.testing.assert_array_equal(
            _read_varints(buf), np.asarray(values, dtype=np.uint64)
        )

    def test_small_values_one_byte(self):
        buf = io.BytesIO()
        _write_varints(buf, np.arange(100, dtype=np.uint64))
        assert len(buf.getvalue()) == 16 + 100  # header + 1 byte each


class TestZigzag:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=-(2**60), max_value=2**60), max_size=100))
    def test_roundtrip(self, values):
        v = np.asarray(values, dtype=np.int64)
        np.testing.assert_array_equal(_unzigzag(_zigzag(v)), v)

    def test_small_magnitudes_stay_small(self):
        z = _zigzag(np.array([-1, 1, -2, 2]))
        assert z.max() <= 4  # zig-zag keeps near-zero deltas tiny


class TestCompactBlock:
    def _block(self, seed=1, n=800):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 10, size=(n, 3))
        t = tessellate(pts, Bounds.cube(10.0), nblocks=2, ghost=3.5)
        return t.blocks[0]

    def test_roundtrip_structure_exact(self):
        b = self._block()
        d = compact_decode(compact_encode(b))
        assert d.gid == b.gid
        assert d.extents == b.extents
        np.testing.assert_array_equal(d.site_ids, b.site_ids)
        np.testing.assert_array_equal(d.face_neighbors, b.face_neighbors)
        np.testing.assert_array_equal(d.face_vertices, b.face_vertices)
        np.testing.assert_array_equal(d.face_offsets, b.face_offsets)
        np.testing.assert_array_equal(d.cell_face_offsets, b.cell_face_offsets)

    def test_geometry_float32_precision(self):
        b = self._block(seed=2)
        d = compact_decode(compact_encode(b))
        np.testing.assert_allclose(d.vertices, b.vertices, atol=1e-5)
        np.testing.assert_allclose(d.volumes, b.volumes, rtol=1e-5)
        np.testing.assert_allclose(d.areas, b.areas, rtol=1e-5)
        np.testing.assert_allclose(d.sites, b.sites, atol=1e-5)

    def test_substantially_smaller_than_standard(self):
        b = self._block(seed=3)
        compact = compact_encode(b)
        standard = pack_arrays(b.to_arrays())
        assert len(compact) < 0.5 * len(standard)

    def test_empty_block(self):
        from repro.core.data_model import VoronoiBlock

        empty = VoronoiBlock.from_cells(0, Bounds.cube(1.0), [])
        d = compact_decode(compact_encode(empty))
        assert d.num_cells == 0
        assert d.num_faces == 0

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="compact"):
            compact_decode(b"JUNKJUNKJUNK" + b"\0" * 64)

    def test_decoded_block_supports_analysis(self):
        """Decoded blocks behave like originals in the analysis pipeline."""
        b = self._block(seed=4)
        d = compact_decode(compact_encode(b))
        assert d.faces_per_cell() == pytest.approx(b.faces_per_cell())
        for i in (0, d.num_cells // 2):
            np.testing.assert_array_equal(
                d.neighbors_of_cell(i), b.neighbors_of_cell(i)
            )
            got = [f.tolist() for f in d.faces_of_cell(i)]
            want = [f.tolist() for f in b.faces_of_cell(i)]
            assert got == want
