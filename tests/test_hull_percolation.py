"""Tests for the distributed convex hull and percolation statistics."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.core import tessellate
from repro.core.hull_mode import convex_hull_distributed, convex_hull_parallel
from repro.geometry.convex_hull import convex_hull
from repro.analysis.percolation import (
    percolation_curve,
    percolation_threshold,
)


class TestDistributedHull:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_matches_serial_hull(self, nranks):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(500, 3))
        serial = convex_hull(pts, backend="native")
        par = convex_hull_parallel(pts, nranks=nranks)
        assert par.volume() == pytest.approx(serial.volume(), rel=1e-12)
        assert par.area() == pytest.approx(serial.area(), rel=1e-12)
        # Same vertex *coordinates* (indices differ across point arrays).
        a = np.unique(np.round(serial.points[serial.vertices], 9), axis=0)
        b = np.unique(np.round(par.points[par.vertices], 9), axis=0)
        np.testing.assert_array_equal(a, b)

    def test_all_ranks_receive_hull(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(size=(200, 3))

        def worker(comm):
            mine = pts[comm.rank :: comm.size]
            h = convex_hull_distributed(comm, mine)
            return h.volume()

        vols = run_parallel(3, worker)
        assert len(set(np.round(vols, 12))) == 1

    def test_rank_with_few_points(self):
        """A rank holding < 4 points still contributes candidates."""
        corners = np.array(
            [[x, y, z] for x in (0, 1) for y in (0, 1) for z in (0, 1)],
            dtype=float,
        )

        def worker(comm):
            if comm.rank == 0:
                mine = corners[:2]  # too few for a local hull
            else:
                mine = corners[2:]
            return convex_hull_distributed(comm, mine).volume()

        vols = run_parallel(2, worker)
        assert vols[0] == pytest.approx(1.0)

    def test_degenerate_local_cloud(self):
        """A rank whose points are collinear falls back to all-candidates."""
        line = np.column_stack(
            [np.linspace(0, 1, 10), np.zeros(10), np.zeros(10)]
        )
        cloud = np.random.default_rng(2).uniform(size=(50, 3))

        def worker(comm):
            mine = line if comm.rank == 0 else cloud
            return convex_hull_distributed(comm, mine).volume()

        vols = run_parallel(2, worker)
        ref = convex_hull(np.vstack([line, cloud]), backend="native")
        assert vols[0] == pytest.approx(ref.volume(), rel=1e-12)

    def test_too_few_total_points(self):
        def worker(comm):
            return convex_hull_distributed(comm, np.zeros((1, 3)) + comm.rank)

        with pytest.raises(Exception):
            run_parallel(2, worker)


class TestPercolation:
    def _tess(self, seed=0, n=600):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 10, size=(n, 3))
        return tessellate(pts, Bounds.cube(10.0), nblocks=2, ghost=4.0)

    def test_curve_monotonicity(self):
        tess = self._tess(1)
        v = tess.volumes()
        curve = percolation_curve(tess, np.linspace(v.min(), v.max(), 10))
        kept = [p.kept_cells for p in curve]
        assert kept == sorted(kept, reverse=True)
        assert curve[0].kept_cells == tess.num_cells
        assert curve[0].num_components == 1
        assert curve[0].percolates

    def test_high_threshold_fragments(self):
        tess = self._tess(2)
        v = tess.volumes()
        point = percolation_curve(tess, [float(np.quantile(v, 0.98))])[0]
        assert not point.percolates or point.kept_cells < 20

    def test_threshold_bracketing(self):
        tess = self._tess(3)
        t = percolation_threshold(tess)
        v = tess.volumes()
        assert v.min() <= t <= v.max()
        below = percolation_curve(tess, [t * 0.8 + v.min() * 0.2])[0]
        assert below.percolates

    def test_empty_tessellation_rejected(self):
        from repro.core.tessellate import Tessellation

        with pytest.raises(ValueError):
            percolation_threshold(
                Tessellation(domain=Bounds.cube(1.0), blocks=[])
            )

    def test_zero_kept_cells_handled(self):
        tess = self._tess(4)
        point = percolation_curve(tess, [1e9])[0]
        assert point.kept_cells == 0
        assert point.largest_fraction == 0.0
        assert not point.percolates
