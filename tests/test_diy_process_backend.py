"""Tests for the process SPMD backend and its zero-copy transport.

Covers the transport layer in isolation (protocol-5 encode/decode, the
pooled shared-memory allocator, lease-based recycling) and the forked
backend end to end: collectives matching the thread backend, shared-memory
movement of large arrays, failure propagation, and deadlock timeouts.
"""

import pickle

import numpy as np
import pytest

from repro.diy import transport
from repro.diy.comm import ParallelError, run_parallel


# ----------------------------------------------------------------------
# transport layer (no processes involved)
# ----------------------------------------------------------------------
class TestEncodeDecode:
    def _roundtrip(self, obj, pool, threshold=None):
        meta, descriptors, shm_bytes = transport.encode_payload(
            obj, pool, threshold=threshold
        )
        attached = {}

        def attach(name):
            if name not in attached:
                attached[name] = transport.attach_segment(name)
            return attached[name]

        out, lease = transport.decode_payload(meta, descriptors, attach)
        return out, lease, shm_bytes, attached

    def test_small_array_stays_inline(self):
        pool = transport.ShmPool()
        arr = np.arange(16, dtype=np.float64)
        out, lease, shm_bytes, attached = self._roundtrip(arr, pool)
        assert lease is None and shm_bytes == 0 and not attached
        np.testing.assert_array_equal(out, arr)
        assert pool.created == 0
        pool.shutdown()

    def test_large_array_rides_shared_memory(self):
        pool = transport.ShmPool()
        arr = np.arange(100_000, dtype=np.float64)
        out, lease, shm_bytes, attached = self._roundtrip(arr, pool)
        assert shm_bytes == arr.nbytes
        assert lease is not None and len(lease.names) == 1
        assert pool.created == 1
        np.testing.assert_array_equal(out, arr)
        del out
        assert lease.idle()
        lease.release_views()
        for shm in attached.values():
            transport.close_segment_quietly(shm)
        pool.shutdown()

    def test_lease_not_idle_while_array_alive(self):
        pool = transport.ShmPool()
        arr = np.ones(50_000)
        out, lease, _, attached = self._roundtrip(arr, pool)
        assert not lease.idle()
        del out
        assert lease.idle()
        lease.release_views()
        for shm in attached.values():
            transport.close_segment_quietly(shm)
        pool.shutdown()

    def test_nested_container_with_mixed_buffers(self):
        pool = transport.ShmPool()
        payload = {
            "big": np.arange(60_000, dtype=np.int64),
            "small": np.float32([1.5, 2.5]),
            "meta": ("text", 7, None),
        }
        out, lease, shm_bytes, attached = self._roundtrip(payload, pool)
        assert shm_bytes == payload["big"].nbytes
        np.testing.assert_array_equal(out["big"], payload["big"])
        np.testing.assert_array_equal(out["small"], payload["small"])
        assert out["meta"] == ("text", 7, None)
        del out
        lease.release_views()
        for shm in attached.values():
            transport.close_segment_quietly(shm)
        pool.shutdown()

    def test_fortran_order_array_roundtrips(self):
        pool = transport.ShmPool()
        arr = np.asfortranarray(np.arange(30_000, dtype=np.float64).reshape(150, 200))
        out, lease, _, attached = self._roundtrip(arr, pool)
        np.testing.assert_array_equal(out, arr)
        del out
        if lease is not None:
            lease.release_views()
        for shm in attached.values():
            transport.close_segment_quietly(shm)
        pool.shutdown()

    def test_threshold_override(self):
        pool = transport.ShmPool()
        arr = np.arange(64, dtype=np.float64)  # 512 bytes
        _, _, shm_bytes, _ = self._roundtrip(arr, pool, threshold=256)
        assert shm_bytes == arr.nbytes
        pool.shutdown()


class TestChunkedFraming:
    """send_message/recv_message: framing above the pipe's C-int cap.

    Real >2 GiB payloads are not testable in CI; the limits are module
    attributes precisely so these tests can shrink them and exercise the
    exact code paths a 2 GiB message would take.
    """

    def _pipe(self):
        from multiprocessing import Pipe

        return Pipe(duplex=True)

    def test_small_message_is_single_frame(self):
        a, b = self._pipe()
        wire = pickle.dumps(list(range(100)), protocol=5)
        assert transport.send_message(a, wire) == 0
        obj, frames = transport.recv_message(b)
        assert obj == list(range(100)) and frames == 0

    def test_oversized_message_chunks_and_reassembles(self, monkeypatch):
        monkeypatch.setattr(transport, "CHUNK_LIMIT", 1024)
        a, b = self._pipe()
        payload = {"arr": list(range(4000)), "tag": "big"}
        wire = pickle.dumps(payload, protocol=5)
        expected = -(-len(wire) // 1024)
        assert expected > 1
        assert transport.send_message(a, wire) == expected
        obj, frames = transport.recv_message(b)
        assert obj == payload
        assert frames == expected

    def test_chunk_boundary_exact_multiple(self, monkeypatch):
        monkeypatch.setattr(transport, "CHUNK_LIMIT", 256)
        a, b = self._pipe()
        body = bytes(256 * 4 - 37)  # pickle overhead lands off-boundary
        wire = pickle.dumps(body, protocol=5)
        sent = transport.send_message(a, wire)
        obj, frames = transport.recv_message(b)
        assert obj == body and frames == sent > 0

    def test_disabled_chunking_raises_commerror_naming_size(self, monkeypatch):
        monkeypatch.setattr(transport, "CHUNK_LIMIT", 0)
        monkeypatch.setattr(transport, "_PIPE_MAX", 4096)
        a, _ = self._pipe()
        wire = pickle.dumps(bytes(10_000), protocol=5)
        with pytest.raises(transport.CommError) as exc:
            transport.send_message(a, wire)
        # The error must be actionable: payload size and the knob by name.
        assert str(len(wire)) in str(exc.value)
        assert "REPRO_CHUNK_LIMIT" in str(exc.value)

    def test_end_to_end_chunked_send_between_ranks(self, monkeypatch):
        # Keep the array out of shared memory so the wire blob itself is
        # large, then force chunking at 4 KiB.  The closure worker defeats
        # pickling, so the fresh-fork path runs and inherits both patches.
        monkeypatch.setattr(transport, "SHM_THRESHOLD", 1 << 30)
        monkeypatch.setattr(transport, "CHUNK_LIMIT", 4096)
        marker = object()  # unpicklable closure cell

        def worker(comm, _marker=marker):
            if comm.rank == 0:
                comm.send(np.arange(40_000, dtype=np.float64), dest=1, tag=7)
                total = -1.0
            else:
                arr = comm.recv(source=0, tag=7)
                total = float(arr.sum())
            comm.barrier()
            return total, comm.stats.chunk_frames_sent

        results = run_parallel(2, worker, backend="process")
        assert results[1][0] == float(np.arange(40_000).sum())
        assert results[0][1] > 0  # sender used chunk frames
        assert results[1][1] == 0


class TestShmPool:
    def test_size_classes_are_powers_of_two(self):
        assert transport.ShmPool._size_class(1) == transport._MIN_SEGMENT
        assert transport.ShmPool._size_class(transport._MIN_SEGMENT) == (
            transport._MIN_SEGMENT
        )
        assert transport.ShmPool._size_class(transport._MIN_SEGMENT + 1) == (
            transport._MIN_SEGMENT * 2
        )

    def test_recycle_reuses_segment(self):
        pool = transport.ShmPool()
        seg = pool.acquire(1000)
        name = seg.name
        pool.recycle(name)
        seg2 = pool.acquire(1000)
        assert seg2.name == name
        assert pool.created == 1 and pool.recycled == 1
        pool.shutdown()

    def test_shutdown_idempotent(self):
        pool = transport.ShmPool()
        pool.acquire(100)
        pool.shutdown()
        pool.shutdown()


# ----------------------------------------------------------------------
# forked backend, end to end
# ----------------------------------------------------------------------
def _collective_workout(comm):
    """One of everything; returns a comparable per-rank summary."""
    rank, size = comm.rank, comm.size
    big = np.arange(20_000, dtype=np.float64) + rank  # > SHM_THRESHOLD
    out = {
        "bcast": comm.bcast({"root": 0, "arr": big} if rank == 0 else None),
        "gathered": comm.gather(rank * 2, root=0),
        "scattered": comm.scatter(
            [f"item{i}" for i in range(size)] if rank == 0 else None
        ),
        "reduced": comm.reduce(rank + 1, root=0),
        "allreduced": comm.allreduce(float(big.sum())),
        "allgathered": comm.allgather(rank),
        "exscan": comm.exscan(rank + 1),
        "alltoall": comm.alltoall([(rank, d) for d in range(size)]),
        "sparse": sorted(
            comm.sparse_alltoall({(rank + 1) % size: np.full(5000, rank)})
        ),
    }
    comm.barrier()
    out["bcast_sum"] = float(out["bcast"]["arr"].sum())
    del out["bcast"]
    out["stats"] = comm.stats.as_dict()
    return out


def _strip_timing(stats):
    return {
        k: v
        for k, v in stats.items()
        if k
        not in ("recv_wait_s", "barrier_wait_s", "shm_msgs_sent", "shm_bytes_sent")
    }


class TestProcessCollectives:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8])
    def test_matches_thread_backend(self, n):
        thread = run_parallel(n, _collective_workout, backend="thread")
        process = run_parallel(n, _collective_workout, backend="process")
        for t, p in zip(thread, process):
            t_stats, p_stats = t.pop("stats"), p.pop("stats")
            assert t == p
            # Identical traffic pattern: same message/byte counters and the
            # same per-collective call counts on both transports.
            assert _strip_timing(t_stats) == _strip_timing(p_stats)

    def test_noncommutative_op_rank_order(self):
        def worker(comm):
            return comm.allreduce(f"<{comm.rank}>", op=lambda a, b: a + b)

        (r0, *rest) = run_parallel(4, worker, backend="process")
        assert r0 == "<0><1><2><3>"
        assert all(r == r0 for r in rest)

    def test_large_payloads_use_shared_memory(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100_000), dest=1, tag=3)
            elif comm.rank == 1:
                arr = comm.recv(source=0, tag=3)
                assert arr.shape == (100_000,)
            comm.barrier()
            return comm.stats.shm_msgs_sent, comm.stats.shm_bytes_sent

        results = run_parallel(2, worker, backend="process")
        assert results[0][0] >= 1
        assert results[0][1] >= 800_000

    def test_thread_backend_never_uses_shared_memory(self):
        def worker(comm):
            comm.allreduce(np.zeros(100_000))
            return comm.stats.shm_msgs_sent

        assert run_parallel(2, worker, backend="thread") == [0, 0]

    def test_segment_recycling_bounds_pool_growth(self):
        rounds = 10

        def worker(comm):
            import time

            peer = 1 - comm.rank
            for i in range(rounds):
                if comm.rank == 0:
                    comm.send(np.full(50_000, i, dtype=np.float64), peer, tag=i)
                    reply = comm.recv(source=peer, tag=i)
                    assert reply[0] == -i
                else:
                    got = comm.recv(source=peer, tag=i)
                    assert got[0] == i
                    del got  # drop the shm view so the lease goes idle
                    comm.send(np.full(50_000, -i, dtype=np.float64), peer, tag=i)
                time.sleep(0.06)  # let the receiver thread reap idle leases
            comm.barrier()
            return comm._world.pool.created

        created = run_parallel(2, worker, backend="process")
        # Without recycling each rank would create `rounds` segments.
        assert all(c < rounds for c in created)


class TestProcessFailures:
    def test_exception_propagates_with_rank(self):
        def worker(comm):
            if comm.rank == 2:
                raise ValueError("boom in child")
            comm.barrier()

        with pytest.raises(ParallelError) as exc:
            run_parallel(4, worker, backend="process")
        assert exc.value.rank == 2
        assert "boom in child" in str(exc.value)

    def test_exception_unblocks_pending_recv(self):
        def worker(comm):
            if comm.rank == 0:
                raise RuntimeError("early death")
            comm.recv(source=0, tag=9)  # never sent

        with pytest.raises(ParallelError) as exc:
            run_parallel(2, worker, backend="process")
        assert exc.value.rank == 0

    def test_deadlock_times_out(self):
        def worker(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=42)  # rank 1 never sends

        with pytest.raises(ParallelError):
            run_parallel(2, worker, backend="process", recv_timeout=1.5)

    def test_unpicklable_result_reported_not_hung(self):
        def worker(comm):
            return lambda: None  # cannot cross the result pipe

        with pytest.raises(ParallelError):
            run_parallel(2, worker, backend="process")


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_parallel(2, lambda comm: None, backend="mpi")

    def test_process_single_rank_runs_inline(self):
        import os

        pid = os.getpid()
        results = run_parallel(
            1, lambda comm: (os.getpid(), comm.size), backend="process"
        )
        assert results == [(pid, 1)]

    def test_process_ranks_are_distinct_processes(self):
        import os

        def worker(comm):
            return os.getpid()

        pids = run_parallel(3, worker, backend="process")
        assert len(set(pids)) == 3
        assert os.getpid() not in pids
