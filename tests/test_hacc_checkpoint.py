"""Tests for HACC-style checkpoints and simulation restart."""

import numpy as np
import pytest

from repro.diy.comm import run_parallel
from repro.hacc import HACCSimulation, SimulationConfig
from repro.hacc.checkpoint import (
    BYTES_PER_PARTICLE,
    read_checkpoint,
    restart_simulation,
    write_checkpoint,
)


class TestCheckpointFormat:
    def test_roundtrip_and_size(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=6, seed=1)
        path = str(tmp_path / "c.ckpt")

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            for _ in range(3):
                sim.step()
            return write_checkpoint(path, comm, sim), sim.a

        sizes = run_parallel(2, worker)
        particles, scalar, a, step, np_side = read_checkpoint(path)
        assert len(particles) == 512
        assert sorted(particles.ids) == list(range(512))
        assert step == 3 and np_side == 8
        assert a == pytest.approx(sizes[0][1])
        # 40 bytes/particle plus per-block headers and the file index.
        payload = 512 * BYTES_PER_PARTICLE
        assert payload <= sizes[0][0] < payload + 512

    def test_positions_float32_rounding(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=2, seed=2)
        path = str(tmp_path / "c.ckpt")

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.step()
            write_checkpoint(path, comm, sim)
            return sim.local

        local = run_parallel(1, worker)[0]
        particles, _, _, _, _ = read_checkpoint(path)
        got = particles.positions[np.argsort(particles.ids)]
        want = local.positions[np.argsort(local.ids)]
        np.testing.assert_allclose(got, want, atol=1e-5)  # f32 storage

    def test_scalar_annotation(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=1, seed=3)
        path = str(tmp_path / "c.ckpt")

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            density = np.arange(len(sim.local), dtype=float)
            write_checkpoint(path, comm, sim, scalar=density)
            return len(sim.local)

        run_parallel(1, worker)
        _, scalar, _, _, _ = read_checkpoint(path)
        np.testing.assert_allclose(scalar, np.arange(512), atol=1e-3)


class TestRestart:
    def test_restart_matches_uninterrupted(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=8, seed=4)
        path = str(tmp_path / "mid.ckpt")

        def straight(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.run()
            return sim.local

        def interrupted(comm):
            sim = HACCSimulation(cfg, comm=comm)
            for _ in range(4):
                sim.step()
            write_checkpoint(path, comm, sim)
            resumed = restart_simulation(path, cfg, comm=comm)
            assert resumed.step_index == 4
            while resumed.step_index < cfg.nsteps:
                resumed.step()
            return resumed.local

        a = run_parallel(1, straight)[0]
        b = run_parallel(1, interrupted)[0]
        pa = a.positions[np.argsort(a.ids)]
        pb = b.positions[np.argsort(b.ids)]
        # Equal up to float32 storage rounding amplified by 4 steps.
        np.testing.assert_allclose(pb, pa, atol=1e-3)

    def test_restart_with_different_rank_count(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=4, seed=5)
        path = str(tmp_path / "r.ckpt")

        def writer(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.step()
            write_checkpoint(path, comm, sim)

        run_parallel(2, writer)

        def reader(comm):
            sim = restart_simulation(path, cfg, comm=comm)
            return len(sim.local)

        counts = run_parallel(4, reader)
        assert sum(counts) == 512

    def test_mismatched_config_rejected(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=2, seed=6)
        path = str(tmp_path / "m.ckpt")

        def writer(comm):
            sim = HACCSimulation(cfg, comm=comm)
            write_checkpoint(path, comm, sim)

        run_parallel(1, writer)
        with pytest.raises(ValueError, match="8"):
            restart_simulation(path, SimulationConfig(np_side=12, nsteps=2))
