"""Tests for HACC-style checkpoints and simulation restart."""

import numpy as np
import pytest

from repro.diy.comm import run_parallel
from repro.diy.mpi_io import write_blocks
from repro.hacc import HACCSimulation, SimulationConfig
from repro.hacc.checkpoint import (
    BYTES_PER_PARTICLE,
    CheckpointError,
    _encode_block,
    checkpoint_path,
    find_latest_checkpoint,
    read_checkpoint,
    restart_simulation,
    write_checkpoint,
)


class TestCheckpointFormat:
    def test_roundtrip_and_size(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=6, seed=1)
        path = str(tmp_path / "c.ckpt")

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            for _ in range(3):
                sim.step()
            return write_checkpoint(path, comm, sim), sim.a

        sizes = run_parallel(2, worker)
        particles, scalar, a, step, np_side = read_checkpoint(path)
        assert len(particles) == 512
        assert sorted(particles.ids) == list(range(512))
        assert step == 3 and np_side == 8
        assert a == pytest.approx(sizes[0][1])
        # 40 bytes/particle plus per-block headers and the file index.
        payload = 512 * BYTES_PER_PARTICLE
        assert payload <= sizes[0][0] < payload + 512

    def test_positions_float32_rounding(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=2, seed=2)
        path = str(tmp_path / "c.ckpt")

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.step()
            write_checkpoint(path, comm, sim)
            return sim.local

        local = run_parallel(1, worker)[0]
        particles, _, _, _, _ = read_checkpoint(path)
        got = particles.positions[np.argsort(particles.ids)]
        want = local.positions[np.argsort(local.ids)]
        np.testing.assert_allclose(got, want, atol=1e-5)  # f32 storage

    def test_scalar_annotation(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=1, seed=3)
        path = str(tmp_path / "c.ckpt")

        def worker(comm):
            sim = HACCSimulation(cfg, comm=comm)
            density = np.arange(len(sim.local), dtype=float)
            write_checkpoint(path, comm, sim, scalar=density)
            return len(sim.local)

        run_parallel(1, worker)
        _, scalar, _, _, _ = read_checkpoint(path)
        np.testing.assert_allclose(scalar, np.arange(512), atol=1e-3)


class TestRestart:
    def test_restart_matches_uninterrupted(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=8, seed=4)
        path = str(tmp_path / "mid.ckpt")

        def straight(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.run()
            return sim.local

        def interrupted(comm):
            sim = HACCSimulation(cfg, comm=comm)
            for _ in range(4):
                sim.step()
            write_checkpoint(path, comm, sim)
            resumed = restart_simulation(path, cfg, comm=comm)
            assert resumed.step_index == 4
            while resumed.step_index < cfg.nsteps:
                resumed.step()
            return resumed.local

        a = run_parallel(1, straight)[0]
        b = run_parallel(1, interrupted)[0]
        pa = a.positions[np.argsort(a.ids)]
        pb = b.positions[np.argsort(b.ids)]
        # Equal up to float32 storage rounding amplified by 4 steps.
        np.testing.assert_allclose(pb, pa, atol=1e-3)

    def test_restart_with_different_rank_count(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=4, seed=5)
        path = str(tmp_path / "r.ckpt")

        def writer(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.step()
            write_checkpoint(path, comm, sim)

        run_parallel(2, writer)

        def reader(comm):
            sim = restart_simulation(path, cfg, comm=comm)
            return len(sim.local)

        counts = run_parallel(4, reader)
        assert sum(counts) == 512

    def test_mismatched_config_rejected(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=2, seed=6)
        path = str(tmp_path / "m.ckpt")

        def writer(comm):
            sim = HACCSimulation(cfg, comm=comm)
            write_checkpoint(path, comm, sim)

        run_parallel(1, writer)
        with pytest.raises(ValueError, match="8"):
            restart_simulation(path, SimulationConfig(np_side=12, nsteps=2))

    def test_restart_redistributes_scalar_annotation(self, tmp_path):
        """The per-particle scalar written with the checkpoint follows its
        particles through restart redistribution, even when the restart
        rank count differs from the writing one."""
        cfg = SimulationConfig(np_side=8, nsteps=4, seed=12)
        path = str(tmp_path / "s.ckpt")

        def writer(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.step()
            # A scalar that identifies its particle: scalar[i] = ids[i].
            write_checkpoint(path, comm, sim,
                             scalar=sim.local.ids.astype(float),
                             precision="f8")

        run_parallel(2, writer)

        def reader(comm):
            sim = restart_simulation(path, cfg, comm=comm)
            assert sim.cell_density is not None
            assert len(sim.cell_density) == len(sim.local)
            np.testing.assert_array_equal(
                sim.cell_density, sim.local.ids.astype(float)
            )
            return len(sim.local)

        for nranks in (2, 4):  # same and different rank count
            assert sum(run_parallel(nranks, reader)) == 512


class TestCheckpointValidation:
    def test_empty_file_rejected_with_named_error(self, tmp_path):
        path = str(tmp_path / "empty.ckpt")
        open(path, "wb").close()
        with pytest.raises(CheckpointError, match="empty.ckpt"):
            read_checkpoint(path)

    def test_truncated_block_names_path_gid_and_bytes(self, tmp_path):
        """A block cut mid-particle-data is reported with the path, the
        block gid, and expected vs. actual byte counts — not an opaque
        numpy buffer error."""
        cfg = SimulationConfig(np_side=8, nsteps=1, seed=9)
        sim = HACCSimulation(cfg)
        blob = _encode_block(sim.local, sim.a, 1, 8, None)
        cut = blob[: len(blob) // 2]
        path = str(tmp_path / "trunc.ckpt")
        run_parallel(
            1, lambda c: write_blocks(path, c, [(0, cut)], nblocks_total=1)
        )
        with pytest.raises(CheckpointError) as exc:
            read_checkpoint(path)
        msg = str(exc.value)
        assert "trunc.ckpt" in msg and "block 0" in msg
        assert str(len(cut)) in msg and str(len(blob)) in msg

    def test_duplicate_ids_rejected_by_validate(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=1, seed=10)
        sim = HACCSimulation(cfg)
        blob = _encode_block(sim.local, sim.a, 1, 8, None)
        path = str(tmp_path / "dup.ckpt")
        run_parallel(
            1,
            lambda c: write_blocks(
                path, c, [(0, blob), (1, blob)], nblocks_total=2
            ),
        )
        # Without validation the duplicated file reads "successfully"...
        particles, _, _, _, _ = read_checkpoint(path)
        assert len(particles) == 1024
        # ...with validation the id-coverage check catches it.
        with pytest.raises(CheckpointError, match="duplicate"):
            read_checkpoint(path, validate=True)
        with pytest.raises(CheckpointError, match="duplicate"):
            restart_simulation(path, cfg)

    def test_find_latest_skips_invalid_checkpoints(self, tmp_path):
        cfg = SimulationConfig(np_side=8, nsteps=6, seed=13)
        ckpt_dir = str(tmp_path)

        def writer(comm):
            sim = HACCSimulation(cfg, comm=comm)
            sim.step(); sim.step()
            write_checkpoint(checkpoint_path(ckpt_dir, 2), comm, sim)

        run_parallel(2, writer)
        # A newer checkpoint that is garbage (e.g. assembled from a torn
        # write of the pre-CRC format) must be skipped, not crash the scan.
        with open(checkpoint_path(ckpt_dir, 4), "wb") as fh:
            fh.write(b"\x00" * 100)
        found = find_latest_checkpoint(ckpt_dir, cfg)
        assert found is not None
        step, path = found
        assert step == 2 and path.endswith("ckpt-000002.ckpt")
