"""Tests for the blocked single-file I/O (repro.diy.mpi_io)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diy.comm import run_parallel
from repro.diy.mpi_io import (
    BlockFileReader,
    pack_arrays,
    unpack_arrays,
    write_blocks,
)


class TestArrayContainer:
    def test_roundtrip_mixed_dtypes(self):
        arrays = {
            "pos": np.random.default_rng(0).normal(size=(17, 3)),
            "ids": np.arange(17, dtype=np.int64),
            "flags": np.array([True, False, True]),
            "empty": np.empty((0, 3), dtype=np.float32),
        }
        out = unpack_arrays(pack_arrays(arrays))
        assert set(out) == set(arrays)
        for k in arrays:
            assert out[k].dtype == arrays[k].dtype
            assert out[k].shape == arrays[k].shape
            np.testing.assert_array_equal(out[k], arrays[k])

    def test_empty_container(self):
        assert unpack_arrays(pack_arrays({})) == {}

    def test_deterministic_bytes(self):
        a = {"b": np.arange(4), "a": np.ones(2)}
        assert pack_arrays(a) == pack_arrays(dict(reversed(list(a.items()))))

    def test_no_pickle_in_format(self):
        # Object arrays require pickling and must be rejected.
        with pytest.raises(Exception):
            pack_arrays({"o": np.array([{"a": 1}], dtype=object)})

    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=10),
            st.integers(min_value=0, max_value=20),
            max_size=5,
        )
    )
    def test_roundtrip_property(self, spec):
        arrays = {k: np.arange(n, dtype=np.float64) for k, n in spec.items()}
        out = unpack_arrays(pack_arrays(arrays))
        assert set(out) == set(arrays)
        for k in arrays:
            np.testing.assert_array_equal(out[k], arrays[k])


class TestBlockFile:
    def _write(self, path, nranks, nblocks):
        def f(comm):
            gids = list(range(comm.rank, nblocks, comm.size))
            blocks = [
                (g, pack_arrays({"data": np.full(g + 1, float(g))})) for g in gids
            ]
            return write_blocks(path, comm, blocks, nblocks_total=nblocks)

        return run_parallel(nranks, f)

    @pytest.mark.parametrize("nranks,nblocks", [(1, 1), (1, 4), (2, 4), (4, 4), (3, 7)])
    def test_write_read_roundtrip(self, tmp_path, nranks, nblocks):
        path = tmp_path / "blocks.diy"
        sizes = self._write(path, nranks, nblocks)
        assert len(set(sizes)) == 1  # total size agreed on all ranks
        assert path.stat().st_size == sizes[0]

        with BlockFileReader(path) as r:
            assert r.nblocks == nblocks
            for g in range(nblocks):
                arrs = r.read_block_arrays(g)
                np.testing.assert_allclose(arrs["data"], np.full(g + 1, float(g)))

    def test_missing_block_raises(self, tmp_path):
        path = tmp_path / "b.diy"
        self._write(path, 1, 2)
        with BlockFileReader(path) as r:
            with pytest.raises(KeyError):
                r.read_block(5)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.diy"
        path.write_bytes(b"NOTAFILE" + b"\0" * 64)
        with pytest.raises(ValueError, match="magic"):
            BlockFileReader(path)

    def test_incomplete_gid_coverage_rejected(self, tmp_path):
        path = tmp_path / "gap.diy"

        def f(comm):
            blocks = [(0, b"x"), (2, b"y")]  # gid 1 missing
            return write_blocks(path, comm, blocks, nblocks_total=3)

        with pytest.raises(Exception):
            run_parallel(1, f)

    def test_concurrent_block_payloads_do_not_overlap(self, tmp_path):
        path = tmp_path / "big.diy"
        nblocks = 8

        def f(comm):
            gids = list(range(comm.rank, nblocks, comm.size))
            blocks = [
                (g, pack_arrays({"v": np.random.default_rng(g).normal(size=1000)}))
                for g in gids
            ]
            return write_blocks(path, comm, blocks, nblocks_total=nblocks)

        run_parallel(4, f)
        with BlockFileReader(path) as r:
            for g in range(nblocks):
                expect = np.random.default_rng(g).normal(size=1000)
                np.testing.assert_array_equal(r.read_block_arrays(g)["v"], expect)

    def test_subset_read(self, tmp_path):
        """The postprocessing reader can pull any subset of blocks."""
        path = tmp_path / "s.diy"
        self._write(path, 2, 6)
        with BlockFileReader(path) as r:
            arrs = [r.read_block_arrays(g)["data"] for g in (5, 1, 3)]
        assert [a[0] for a in arrs] == [5.0, 1.0, 3.0]

    def test_parallel_read_from_ranks(self, tmp_path):
        path = tmp_path / "p.diy"
        self._write(path, 2, 4)

        def reader(comm):
            with BlockFileReader(path) as r:
                return {
                    g: float(r.read_block_arrays(g)["data"][0])
                    for g in range(comm.rank, 4, comm.size)
                }

        out = run_parallel(2, reader)
        merged = {**out[0], **out[1]}
        assert merged == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
