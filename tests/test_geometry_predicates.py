"""Tests for the geometric predicates and tolerance policy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.predicates import (
    DEFAULT_REL_EPS,
    INSIDE,
    ON,
    OUTSIDE,
    classify_against_plane,
    orient3d,
    scale_eps,
)


class TestScaleEps:
    def test_scales_with_magnitude(self):
        assert scale_eps(100.0) == pytest.approx(100.0 * DEFAULT_REL_EPS)
        assert scale_eps(-100.0) == pytest.approx(100.0 * DEFAULT_REL_EPS)

    def test_floor_at_unity(self):
        # Tiny objects still get the unit-scale tolerance (no underflow).
        assert scale_eps(1e-30) == pytest.approx(DEFAULT_REL_EPS)

    def test_custom_rel(self):
        assert scale_eps(10.0, rel_eps=1e-3) == pytest.approx(1e-2)


class TestOrient3D:
    def test_positive_orientation(self):
        a, b, c = np.eye(3)
        d = np.zeros(3)
        # d below plane abc: the tetra (a, b, c, d) as defined has a
        # definite sign; its mirror flips it.
        v = orient3d(a, b, c, d)
        assert v != 0
        assert orient3d(b, a, c, d) == pytest.approx(-v)

    def test_coplanar_is_zero(self):
        a = np.array([0.0, 0, 0])
        b = np.array([1.0, 0, 0])
        c = np.array([0.0, 1, 0])
        d = np.array([0.3, 0.4, 0.0])
        assert orient3d(a, b, c, d) == pytest.approx(0.0, abs=1e-15)

    def test_volume_relationship(self):
        # |orient3d| = 6 * tetrahedron volume.
        a = np.zeros(3)
        b = np.array([2.0, 0, 0])
        c = np.array([0.0, 3, 0])
        d = np.array([0.0, 0, 4])
        assert abs(orient3d(a, b, c, d)) == pytest.approx(6.0 * 4.0)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_antisymmetry_property(self, seed):
        rng = np.random.default_rng(seed)
        a, b, c, d = rng.normal(size=(4, 3))
        v = orient3d(a, b, c, d)
        # Swapping any two of the first three arguments flips the sign.
        assert orient3d(a, c, b, d) == pytest.approx(-v, rel=1e-9, abs=1e-12)
        assert orient3d(c, b, a, d) == pytest.approx(-v, rel=1e-9, abs=1e-12)


class TestClassify:
    def test_three_way_split(self):
        pts = np.array([[0.0, 0, 0], [2.0, 0, 0], [1.0, 0, 0]])
        out = classify_against_plane(pts, np.array([1.0, 0, 0]), 1.0, eps=1e-9)
        np.testing.assert_array_equal(out, [INSIDE, OUTSIDE, ON])

    def test_eps_widens_on_band(self):
        pts = np.array([[0.95, 0, 0], [1.05, 0, 0]])
        n = np.array([1.0, 0, 0])
        strict = classify_against_plane(pts, n, 1.0, eps=1e-3)
        loose = classify_against_plane(pts, n, 1.0, eps=0.1)
        np.testing.assert_array_equal(strict, [INSIDE, OUTSIDE])
        np.testing.assert_array_equal(loose, [ON, ON])

    def test_unnormalized_normal(self):
        # The plane is n.x = d with n unnormalized — classification must
        # follow the algebraic sign regardless of |n|.
        pts = np.array([[1.0, 1.0, 0.0]])
        out = classify_against_plane(pts, np.array([2.0, 2.0, 0.0]), 5.0, 1e-9)
        assert out[0] == INSIDE  # 2+2=4 < 5
