"""Tests for the friends-of-friends halo finder."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.diy.comm import run_parallel
from repro.diy.decomposition import Decomposition
from repro.analysis.halos import fof_halos, fof_halos_distributed


def clustered_points(seed=0, size=10.0):
    """Three compact groups + sparse background, inside a periodic box."""
    rng = np.random.default_rng(seed)
    centers = np.array([[2, 2, 2], [8, 8, 8], [2, 8, 5]], dtype=float)
    groups = [rng.normal(c, 0.12, size=(30, 3)) for c in centers]
    bg = rng.uniform(0, size, size=(25, 3))
    pts = np.vstack(groups + [bg]) % size
    return pts


class TestSerialFOF:
    def test_finds_planted_groups(self):
        pts = clustered_points(1)
        cat = fof_halos(pts, linking_length=0.4, domain=Bounds.cube(10.0),
                        min_members=10)
        assert cat.num_halos == 3
        assert all(h.mass >= 25 for h in cat.halos)

    def test_masses_sorted_descending(self):
        pts = clustered_points(2)
        cat = fof_halos(pts, 0.4, Bounds.cube(10.0), min_members=5)
        m = cat.masses()
        assert np.all(m[:-1] >= m[1:])

    def test_min_members_threshold(self):
        pts = clustered_points(3)
        few = fof_halos(pts, 0.4, Bounds.cube(10.0), min_members=40)
        assert few.num_halos == 0

    def test_linking_length_controls_merging(self):
        pts = clustered_points(4)
        small = fof_halos(pts, 0.2, Bounds.cube(10.0), min_members=5)
        huge = fof_halos(pts, 8.0, Bounds.cube(10.0), min_members=5)
        assert huge.num_halos == 1  # everything links up
        assert huge.halos[0].mass == len(pts)
        assert small.num_halos >= 3

    def test_periodic_group_across_seam(self):
        """A group straddling the periodic boundary is one halo."""
        rng = np.random.default_rng(5)
        pts = (rng.normal(0.0, 0.1, size=(40, 3))) % 10.0  # wraps the corner
        cat = fof_halos(pts, 0.5, Bounds.cube(10.0), min_members=10)
        assert cat.num_halos == 1
        assert cat.halos[0].mass == 40
        # The center must sit near the corner (mod 10), not at box center.
        c = cat.halos[0].center
        dist_corner = np.linalg.norm((c + 5.0) % 10.0 - 5.0)
        assert dist_corner < 0.5

    def test_without_domain_open_boundaries(self):
        rng = np.random.default_rng(6)
        pts = np.vstack([
            rng.normal(0.0, 0.1, size=(20, 3)),
            rng.normal(5.0, 0.1, size=(20, 3)),
        ])
        cat = fof_halos(pts, 0.5, domain=None, min_members=10)
        assert cat.num_halos == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fof_halos(np.zeros((3, 2)), 0.2)
        with pytest.raises(ValueError):
            fof_halos(np.zeros((3, 3)), 0.0)

    def test_custom_ids_propagate(self):
        rng = np.random.default_rng(7)
        pts = rng.normal(5.0, 0.1, size=(15, 3))
        ids = np.arange(15) + 1000
        cat = fof_halos(pts, 0.5, Bounds.cube(10.0), min_members=10, ids=ids)
        assert cat.num_halos == 1
        assert set(cat.halos[0].members) == set(ids)

    def test_mass_function(self):
        pts = clustered_points(8)
        cat = fof_halos(pts, 0.4, Bounds.cube(10.0), min_members=5)
        counts = cat.mass_function(np.array([0, 10, 100]))
        assert counts.sum() == cat.num_halos


class TestDistributedFOF:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_matches_serial(self, nranks):
        domain = Bounds.cube(10.0)
        pts = clustered_points(9)
        ids = np.arange(len(pts), dtype=np.int64)
        ref = fof_halos(pts, 0.4, domain, min_members=10, ids=ids)
        decomp = Decomposition.regular(domain, nranks, periodic=True)

        def worker(comm):
            mine = decomp.locate(pts) == comm.rank
            return fof_halos_distributed(
                comm, decomp, pts[mine], ids[mine],
                linking_length=0.4, min_members=10,
            )

        catalogs = run_parallel(nranks, worker)
        for cat in catalogs:
            assert cat.num_halos == ref.num_halos
            got = sorted(tuple(h.members) for h in cat.halos)
            want = sorted(tuple(h.members) for h in ref.halos)
            assert got == want

    def test_group_split_across_ranks(self):
        """A halo exactly on a block boundary must not fragment."""
        domain = Bounds.cube(10.0)
        rng = np.random.default_rng(10)
        pts = rng.normal([5.0, 5.0, 5.0], 0.15, size=(40, 3))  # block seam
        ids = np.arange(40, dtype=np.int64)
        decomp = Decomposition.regular(domain, 8, periodic=True)
        ref = fof_halos(pts, 0.5, domain, min_members=10, ids=ids)

        def worker(comm):
            mine = decomp.locate(pts) == comm.rank
            return fof_halos_distributed(
                comm, decomp, pts[mine], ids[mine], 0.5, min_members=10
            )

        cat = run_parallel(8, worker)[0]
        assert cat.num_halos == ref.num_halos == 1
        assert cat.halos[0].mass == 40
