"""Tests for the DTFE density estimator."""

import numpy as np
import pytest

from repro.diy.bounds import Bounds
from repro.core import tessellate
from repro.analysis.dtfe import dtfe_density, dtfe_grid, voronoi_density


def grid_points(n, size, jitter, seed=0):
    rng = np.random.default_rng(seed)
    spacing = size / n
    base = (np.mgrid[0:n, 0:n, 0:n].reshape(3, -1).T + 0.5) * spacing
    return np.mod(base + rng.uniform(-jitter, jitter, base.shape) * spacing, size)


class TestDTFEDensity:
    def test_uniformish_field_near_mean_density(self):
        size = 8.0
        pts = grid_points(8, size, jitter=0.15, seed=1)
        rho = dtfe_density(pts, domain=Bounds.cube(size))
        mean = len(pts) / size**3
        assert np.all(np.isfinite(rho))
        assert np.median(rho) == pytest.approx(mean, rel=0.25)

    def test_cluster_is_denser_than_void(self):
        rng = np.random.default_rng(2)
        cluster = rng.normal(4.0, 0.25, size=(80, 3))
        sparse = rng.uniform(0, 8.0, size=(80, 3))
        pts = np.clip(np.vstack([cluster, sparse]), 0.01, 7.99)
        rho = dtfe_density(pts, domain=Bounds.cube(8.0))
        assert np.median(rho[:80]) > 5 * np.median(rho[80:])

    def test_masses_scale_linearly(self):
        pts = grid_points(6, 6.0, jitter=0.2, seed=3)
        r1 = dtfe_density(pts, domain=Bounds.cube(6.0))
        r2 = dtfe_density(pts, domain=Bounds.cube(6.0), masses=np.full(len(pts), 2.0))
        np.testing.assert_allclose(r2, 2 * r1)

    def test_open_boundaries_hull_is_nan(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 4, size=(60, 3))
        rho = dtfe_density(pts, domain=None)
        assert np.isnan(rho).any()
        assert np.isfinite(rho).any()

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            dtfe_density(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            dtfe_density(np.zeros((4, 3)), masses=np.ones(3))

    def test_total_mass_consistency(self):
        """Sum of m_i should roughly equal integral rho dV ~ sum(m/rho * rho)."""
        size = 6.0
        pts = grid_points(6, size, jitter=0.25, seed=5)
        rho = dtfe_density(pts, domain=Bounds.cube(size))
        # Each particle's implied volume m/rho: star/4 — total ~ box volume.
        implied = (1.0 / rho).sum()
        assert implied == pytest.approx(size**3, rel=0.15)


class TestDTFEGrid:
    def test_grid_mean_matches_global_density(self):
        size = 6.0
        pts = grid_points(6, size, jitter=0.2, seed=6)
        field = dtfe_grid(pts, Bounds.cube(size), grid_size=12)
        assert field.shape == (12, 12, 12)
        mean = len(pts) / size**3
        assert field.mean() == pytest.approx(mean, rel=0.3)

    def test_grid_peaks_at_cluster(self):
        rng = np.random.default_rng(7)
        cluster = np.clip(rng.normal(2.0, 0.2, size=(100, 3)), 0.1, 7.9)
        bg = rng.uniform(0, 8, size=(120, 3))
        pts = np.vstack([cluster, bg])
        field = dtfe_grid(pts, Bounds.cube(8.0), grid_size=8)
        peak = np.unravel_index(np.argmax(field), field.shape)
        # Cluster center (2,2,2) lies in grid cell (2,2,2) of 8 over 8 Mpc.
        assert all(abs(p - 2) <= 1 for p in peak)

    def test_positive_everywhere_for_periodic_sample(self):
        pts = grid_points(5, 5.0, jitter=0.3, seed=8)
        field = dtfe_grid(pts, Bounds.cube(5.0), grid_size=10)
        assert np.all(np.isfinite(field))
        assert np.all(field > 0)

    def test_pad_fraction_default_unchanged(self):
        """Explicit pad_fraction=0.25 must equal the legacy hardcoded pad."""
        pts = grid_points(5, 5.0, jitter=0.3, seed=8)
        default = dtfe_grid(pts, Bounds.cube(5.0), grid_size=6)
        explicit = dtfe_grid(pts, Bounds.cube(5.0), grid_size=6, pad_fraction=0.25)
        np.testing.assert_array_equal(default, explicit)

    def test_pad_fraction_threads_through(self):
        """A larger padding keeps the field finite and close to default —
        the knob is live, not ignored (dense boxes can shrink it)."""
        pts = grid_points(6, 6.0, jitter=0.2, seed=6)
        wide = dtfe_grid(pts, Bounds.cube(6.0), grid_size=6, pad_fraction=0.5)
        slim = dtfe_grid(pts, Bounds.cube(6.0), grid_size=6, pad_fraction=0.15)
        assert np.all(np.isfinite(wide)) and np.all(np.isfinite(slim))
        np.testing.assert_allclose(wide, slim, rtol=0.2)

    def test_pad_fraction_validated(self):
        pts = grid_points(4, 4.0, jitter=0.2, seed=1)
        for bad in (0.0, -0.1):
            with pytest.raises(ValueError, match="pad_fraction"):
                dtfe_grid(pts, Bounds.cube(4.0), grid_size=4, pad_fraction=bad)
            with pytest.raises(ValueError, match="pad_fraction"):
                dtfe_density(pts, domain=Bounds.cube(4.0), pad_fraction=bad)


class TestVoronoiDensity:
    def test_matches_cell_volumes(self):
        pts = grid_points(6, 6.0, jitter=0.2, seed=9)
        tess = tessellate(pts, Bounds.cube(6.0), nblocks=1, ghost=3.0)
        ids, rho = voronoi_density(tess)
        np.testing.assert_allclose(rho, 1.0 / tess.volumes())
        assert len(ids) == tess.num_cells

    def test_agrees_with_dtfe_in_order_of_magnitude(self):
        size = 6.0
        pts = grid_points(6, size, jitter=0.2, seed=10)
        tess = tessellate(pts, Bounds.cube(size), nblocks=1, ghost=3.0)
        ids, rho_v = voronoi_density(tess)
        rho_d = dtfe_density(pts, domain=Bounds.cube(size))
        by_id = rho_d[np.asarray(ids, dtype=int)]
        ratio = rho_v / by_id
        assert 0.3 < np.median(ratio) < 3.0
