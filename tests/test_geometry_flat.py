"""Direct tests for the vectorized flat Voronoi engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diy.bounds import Bounds
from repro.geometry.voronoi_cells import voronoi_cells_clip
from repro.geometry.voronoi_flat import FlatVoronoi


def poisson(n, size, seed):
    return np.random.default_rng(seed).uniform(0, size, size=(n, 3))


class TestFlatStructure:
    def test_ridge_csr_consistency(self):
        pts = poisson(200, 10.0, 0)
        fv = FlatVoronoi(pts, Bounds.cube(10.0))
        # Offsets monotone, flat array fully covered.
        assert np.all(np.diff(fv.ridge_offsets) >= 3)
        assert fv.ridge_offsets[-1] == len(fv.ridge_flat)
        assert len(fv.ridge_sites) == fv.num_ridges
        assert len(fv.ridge_areas) == fv.num_ridges

    def test_cell_ridges_index_both_sides(self):
        pts = poisson(150, 8.0, 1)
        fv = FlatVoronoi(pts, Bounds.cube(8.0))
        # Every ridge appears in exactly the two cells of its site pair.
        seen = {}
        for s in range(fv.num_sites):
            for r in fv.cell_ridge_ids(s):
                seen.setdefault(int(r), []).append(s)
        for r, sites in seen.items():
            assert sorted(sites) == sorted(fv.ridge_sites[r].tolist())

    def test_ridge_cycles_are_planar_polygons(self):
        pts = poisson(100, 8.0, 2)
        fv = FlatVoronoi(pts, Bounds.cube(8.0))
        for r in range(0, fv.num_ridges, 50):
            cyc = fv.ridge_cycle(r)
            assert len(cyc) >= 3
            v = fv.vertices[cyc]
            p, q = fv.ridge_sites[r]
            axis = pts[q] - pts[p]
            axis = axis / np.linalg.norm(axis)
            # All cycle vertices lie on the bisector plane of (p, q).
            mid = 0.5 * (pts[p] + pts[q])
            d = (v - mid) @ axis
            assert np.max(np.abs(d)) < 1e-8

    def test_cell_neighbors(self):
        pts = poisson(120, 8.0, 3)
        fv = FlatVoronoi(pts, Bounds.cube(8.0))
        for s in range(0, 120, 17):
            nbs = fv.cell_neighbors(s)
            assert s not in nbs
            assert len(nbs) == len(fv.cell_ridge_ids(s))

    def test_degenerate_few_points(self):
        fv = FlatVoronoi(poisson(3, 4.0, 4), Bounds.cube(4.0))
        assert fv.num_ridges == 0
        assert not fv.complete.any()
        assert np.all(fv.volumes == 0)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            FlatVoronoi(np.zeros((5, 2)), Bounds.cube(1.0))


class TestFlatMetrics:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_agrees_with_clip_backend(self, seed):
        pts = poisson(250, 9.0, seed)
        box = Bounds.cube(9.0)
        fv = FlatVoronoi(pts, box)
        for c in voronoi_cells_clip(pts, box):
            if not c.complete:
                assert not fv.complete[c.site]
                continue
            assert fv.complete[c.site]
            assert fv.volumes[c.site] == pytest.approx(c.volume, rel=1e-9)
            assert fv.areas[c.site] == pytest.approx(c.surface_area, rel=1e-9)
            assert set(map(int, fv.cell_neighbors(c.site))) == set(
                map(int, c.neighbors)
            )

    def test_max_vertex_separation(self):
        pts = poisson(80, 6.0, 5)
        fv = FlatVoronoi(pts, Bounds.cube(6.0))
        s = int(np.flatnonzero(fv.complete)[0])
        sep = fv.max_vertex_separation(s)
        assert sep > 0
        # Bounded above by the diameter implied by the isodiametric
        # inequality... loosely: by the box diagonal.
        assert sep < 6.0 * np.sqrt(3)

    def test_bisector_volume_identity(self):
        """V_cell = (1/6) sum A_r d_r over the cell's ridges."""
        pts = poisson(150, 8.0, 6)
        fv = FlatVoronoi(pts, Bounds.cube(8.0))
        for s in np.flatnonzero(fv.complete)[:10]:
            rids = fv.cell_ridge_ids(int(s))
            d = np.linalg.norm(
                pts[fv.ridge_sites[rids, 0]] - pts[fv.ridge_sites[rids, 1]],
                axis=1,
            )
            v = float((fv.ridge_areas[rids] * d).sum() / 6.0)
            assert v == pytest.approx(fv.volumes[s], rel=1e-12)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=500), st.integers(min_value=20, max_value=150)
)
def test_flat_complete_cells_volumes_positive(seed, n):
    pts = poisson(n, 8.0, seed)
    fv = FlatVoronoi(pts, Bounds.cube(8.0))
    assert np.all(fv.volumes[fv.complete] > 0)
    # Complete cells' volumes cannot exceed the box volume.
    assert fv.volumes[fv.complete].sum() <= 8.0**3 + 1e-6
