"""Tests for ConvexPolyhedron (repro.geometry.polyhedron)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diy.bounds import Bounds
from repro.geometry.polyhedron import WALL_IDS, ConvexPolyhedron


def unit_cube() -> ConvexPolyhedron:
    return ConvexPolyhedron.from_bounds(Bounds.cube(1.0))


class TestBoxConstruction:
    def test_box_metrics(self):
        p = ConvexPolyhedron.from_bounds(Bounds((0, 0, 0), (2, 3, 4)))
        assert p.volume() == pytest.approx(24.0)
        assert p.surface_area() == pytest.approx(2 * (2 * 3 + 3 * 4 + 2 * 4))
        np.testing.assert_allclose(p.centroid(), [1.0, 1.5, 2.0])

    def test_box_is_valid(self):
        unit_cube().validate()

    def test_box_face_ids_are_walls(self):
        p = unit_cube()
        assert tuple(p.face_ids) == WALL_IDS
        assert p.wall_face_mask().all()
        assert len(p.neighbor_ids()) == 0

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            ConvexPolyhedron.from_bounds(Bounds.cube(1.0, dim=2))

    def test_contains(self):
        p = unit_cube()
        assert p.contains([0.5, 0.5, 0.5])
        assert p.contains([1.0, 1.0, 1.0])  # boundary, tolerant
        assert not p.contains([1.1, 0.5, 0.5])

    def test_counts(self):
        p = unit_cube()
        assert p.num_vertices == 8
        assert p.num_faces == 6
        assert p.num_face_vertices == 24

    def test_max_distances(self):
        p = unit_cube()
        assert p.max_vertex_distance([0.0, 0.0, 0.0]) == pytest.approx(np.sqrt(3))
        assert p.max_pairwise_vertex_distance() == pytest.approx(np.sqrt(3))

    def test_face_plane_outward(self):
        p = unit_cube()
        normals = [p.face_plane(i)[0] for i in range(6)]
        # One outward normal per axis direction.
        dirs = {tuple(np.round(n).astype(int)) for n in normals}
        assert dirs == {
            (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)
        }


class TestClipping:
    def test_clip_misses_returns_self(self):
        p = unit_cube()
        q = p.clip_halfspace(np.array([1.0, 0, 0]), 5.0, generator_id=9)
        assert q is p

    def test_clip_everything_returns_none(self):
        p = unit_cube()
        assert p.clip_halfspace(np.array([1.0, 0, 0]), -1.0, generator_id=9) is None

    def test_half_cube(self):
        p = unit_cube().clip_halfspace(np.array([1.0, 0, 0]), 0.5, generator_id=42)
        assert p.volume() == pytest.approx(0.5)
        # Two 1x1 end faces plus four 0.5x1 side faces.
        assert p.surface_area() == pytest.approx(2 * 1.0 + 4 * 0.5)
        p.validate()
        assert 42 in p.face_ids
        assert list(p.face_ids).count(42) == 1

    def test_cap_face_replaces_wall(self):
        p = unit_cube().clip_halfspace(np.array([1.0, 0, 0]), 0.5, generator_id=42)
        # +x wall (-2) must be gone; the other five walls remain.
        assert -2 not in p.face_ids
        assert sorted(i for i in p.face_ids if i < 0) == [-6, -5, -4, -3, -1]

    def test_corner_cut(self):
        n = np.array([1.0, 1.0, 1.0])
        p = unit_cube().clip_halfspace(n, 0.5, generator_id=1)
        # Cuts off everything except the tetrahedron at the origin corner
        # with legs 0.5: volume = 0.5^3/6.
        assert p.volume() == pytest.approx(0.5**3 / 6.0)
        assert p.num_faces == 4
        p.validate()

    def test_oblique_cut_volume_conservation(self):
        n = np.array([1.0, 2.0, 3.0])
        d = float(n @ np.array([0.5, 0.5, 0.5]))
        kept = unit_cube().clip_halfspace(n, d, generator_id=1)
        other = unit_cube().clip_halfspace(-n, -d, generator_id=2)
        assert kept.volume() + other.volume() == pytest.approx(1.0)
        kept.validate()
        other.validate()

    def test_plane_through_vertex_grazing(self):
        # Plane exactly through a corner, barely grazing: keeps everything.
        n = np.array([1.0, 1.0, 1.0])
        p = unit_cube().clip_halfspace(n, 3.0, generator_id=1)
        assert p.volume() == pytest.approx(1.0)

    def test_plane_through_diagonal(self):
        # Cut exactly through the main diagonal plane x = y.
        n = np.array([1.0, -1.0, 0.0])
        p = unit_cube().clip_halfspace(n, 0.0, generator_id=1)
        assert p.volume() == pytest.approx(0.5)
        p.validate()

    def test_repeated_clips_idempotent(self):
        n = np.array([1.0, 0.0, 0.0])
        p1 = unit_cube().clip_halfspace(n, 0.5, generator_id=1)
        p2 = p1.clip_halfspace(n, 0.5, generator_id=1)
        assert p2.volume() == pytest.approx(p1.volume())

    def test_sequential_clips_commute_in_volume(self):
        n1, d1 = np.array([1.0, 0.5, 0.0]), 0.7
        n2, d2 = np.array([0.0, 1.0, -0.5]), 0.3
        a = unit_cube().clip_halfspace(n1, d1, 1).clip_halfspace(n2, d2, 2)
        b = unit_cube().clip_halfspace(n2, d2, 2).clip_halfspace(n1, d1, 1)
        assert a.volume() == pytest.approx(b.volume())

    def test_original_unmodified(self):
        p = unit_cube()
        v0 = p.vertices.copy()
        p.clip_halfspace(np.array([1.0, 0, 0]), 0.5, generator_id=1)
        np.testing.assert_array_equal(p.vertices, v0)
        assert p.num_faces == 6

    def test_tetrahedron_from_clips(self):
        # Carve a tetrahedron out of a big box with 4 planes.
        p = ConvexPolyhedron.from_bounds(Bounds.cube(10.0, origin=-5.0))
        planes = [
            (np.array([-1.0, 0, 0]), 0.0),
            (np.array([0, -1.0, 0]), 0.0),
            (np.array([0, 0, -1.0]), 0.0),
            (np.array([1.0, 1.0, 1.0]), 1.0),
        ]
        for i, (n, d) in enumerate(planes):
            p = p.clip_halfspace(n, d, generator_id=i)
        assert p.volume() == pytest.approx(1.0 / 6.0)
        assert p.num_faces == 4
        assert p.num_vertices == 4
        assert not p.wall_face_mask().any()
        p.validate()


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        min_size=3,
        max_size=3,
    ).filter(lambda v: np.linalg.norm(v) > 1e-3),
    st.floats(min_value=-1.5, max_value=1.5, allow_nan=False),
)
def test_clip_invariants_random_planes(normal, offset):
    """Clipping never increases volume, and results stay valid and convex."""
    p = ConvexPolyhedron.from_bounds(Bounds.cube(2.0, origin=-1.0))
    v0 = p.volume()
    q = p.clip_halfspace(np.array(normal), offset, generator_id=7)
    if q is None:
        return
    assert q.volume() <= v0 + 1e-9
    assert q.surface_area() > 0
    if q is not p:
        q.validate()


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_clip_sequences_stay_closed(seed):
    """Random sequences of cutting planes through the box keep a closed poly."""
    rng = np.random.default_rng(seed)
    p = ConvexPolyhedron.from_bounds(Bounds.cube(2.0, origin=-1.0))
    for i in range(6):
        n = rng.normal(size=3)
        n /= np.linalg.norm(n)
        d = float(n @ rng.uniform(-0.6, 0.6, size=3))
        q = p.clip_halfspace(n, d, generator_id=i)
        if q is None:
            break
        p = q
        p.validate()
        # Volume of two complementary halves adds up (within tolerance).
    assert p.volume() >= 0.0
