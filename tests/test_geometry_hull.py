"""Tests for convex hulls: native Quickhull vs scipy/Qhull."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.convex_hull import convex_hull, merge_coplanar_triangles


class TestKnownShapes:
    def test_tetrahedron(self):
        pts = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float
        )
        h = convex_hull(pts, backend="native")
        assert len(h.simplices) == 4
        assert set(h.vertices) == {0, 1, 2, 3}
        assert h.volume() == pytest.approx(1.0 / 6.0)

    def test_cube_with_interior_points(self):
        corners = np.array(
            [[x, y, z] for x in (0, 1) for y in (0, 1) for z in (0, 1)],
            dtype=float,
        )
        rng = np.random.default_rng(0)
        interior = rng.uniform(0.2, 0.8, size=(50, 3))
        pts = np.vstack([corners, interior])
        h = convex_hull(pts, backend="native")
        assert set(h.vertices) == set(range(8))
        assert h.volume() == pytest.approx(1.0)
        assert h.area() == pytest.approx(6.0)

    def test_octahedron(self):
        pts = np.array(
            [
                [1, 0, 0], [-1, 0, 0],
                [0, 1, 0], [0, -1, 0],
                [0, 0, 1], [0, 0, -1],
            ],
            dtype=float,
        )
        h = convex_hull(pts, backend="native")
        assert len(h.simplices) == 8
        assert h.volume() == pytest.approx(4.0 / 3.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            convex_hull(np.zeros((3, 3)))

    def test_coplanar_rejected(self):
        pts = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0], [0.5, 0.5, 0]],
            dtype=float,
        )
        with pytest.raises(ValueError, match="coplanar"):
            convex_hull(pts, backend="native")

    def test_collinear_rejected(self):
        pts = np.array([[i, 0, 0] for i in range(6)], dtype=float)
        with pytest.raises(ValueError, match="collinear"):
            convex_hull(pts, backend="native")

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            convex_hull(np.random.default_rng(0).normal(size=(10, 3)), backend="x")


class TestOrientation:
    @pytest.mark.parametrize("backend", ["native", "qhull"])
    def test_all_normals_outward(self, backend):
        rng = np.random.default_rng(5)
        pts = rng.normal(size=(60, 3))
        h = convex_hull(pts, backend=backend)
        centroid = pts[h.vertices].mean(axis=0)
        a, b, c = (pts[h.simplices[:, k]] for k in range(3))
        n = np.cross(b - a, c - a)
        outward = np.einsum("ij,ij->i", n, a - centroid)
        assert np.all(outward > 0)

    @pytest.mark.parametrize("backend", ["native", "qhull"])
    def test_divergence_volume_positive(self, backend):
        rng = np.random.default_rng(6)
        pts = rng.uniform(size=(40, 3))
        h = convex_hull(pts, backend=backend)
        assert h.volume() > 0


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_same_hull_random_gaussian(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(200, 3))
        native = convex_hull(pts, backend="native")
        qhull = convex_hull(pts, backend="qhull")
        assert set(native.vertices) == set(qhull.vertices)
        assert native.volume() == pytest.approx(qhull.volume(), rel=1e-9)
        assert native.area() == pytest.approx(qhull.area(), rel=1e-9)

    def test_same_hull_sphere_surface(self):
        rng = np.random.default_rng(9)
        v = rng.normal(size=(300, 3))
        pts = v / np.linalg.norm(v, axis=1, keepdims=True)
        native = convex_hull(pts, backend="native")
        qhull = convex_hull(pts, backend="qhull")
        # All points are vertices of the hull of a sphere sample.
        assert len(native.vertices) == 300
        assert native.volume() == pytest.approx(qhull.volume(), rel=1e-9)

    def test_contains_all_inputs(self):
        rng = np.random.default_rng(11)
        pts = rng.normal(size=(100, 3))
        h = convex_hull(pts, backend="native")
        for p in pts:
            assert h.contains(p, rel_eps=1e-7)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000), st.integers(min_value=8, max_value=120)
)
def test_hull_property_contains_and_volume(seed, n):
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 3))
    h = convex_hull(pts, backend="native")
    ref = convex_hull(pts, backend="qhull")
    assert h.volume() == pytest.approx(ref.volume(), rel=1e-8)
    # Every input point is inside or on the hull.
    for p in pts[:: max(1, n // 10)]:
        assert h.contains(p, rel_eps=1e-7)


class TestMergeCoplanar:
    def test_cube_merges_to_6_faces(self):
        corners = np.array(
            [[x, y, z] for x in (0, 1) for y in (0, 1) for z in (0, 1)],
            dtype=float,
        )
        h = convex_hull(corners, backend="native")
        faces, normals = merge_coplanar_triangles(h)
        assert len(faces) == 6
        assert all(len(f) == 4 for f in faces)
        dirs = {tuple(np.round(n).astype(int)) for n in normals}
        assert len(dirs) == 6

    def test_generic_hull_unchanged(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(30, 3))
        h = convex_hull(pts, backend="native")
        faces, _ = merge_coplanar_triangles(h)
        assert len(faces) == len(h.simplices)  # no coplanar pairs in generic cloud
