#!/usr/bin/env python3
"""Time-varying void evolution (paper §IV-D, Figure 11).

Tessellates every tenth time step of a small simulation and tracks the
cell density-contrast distribution: as structure forms, the range of
delta = (d - mu_d)/mu_d expands and the skewness and kurtosis grow — the
paper's simple indicators of the breakdown of perturbation theory.

Run:  python examples/time_evolution.py
"""


from repro.hacc import SimulationConfig
from repro.insitu import run_simulation_with_tools
from repro.analysis import density_contrast, histogram


def main() -> None:
    cfg = SimulationConfig(np_side=16, nsteps=50, seed=3)
    print(
        f"Simulating {cfg.np_side}^3 particles, tessellating every 10 steps...\n"
    )
    results = run_simulation_with_tools(
        cfg,
        {"tools": [{"tool": "tessellation", "every": 10,
                    "params": {"ghost": 4.0}}]},
        nranks=2,
    )

    print(
        f"{'step':>5} {'a':>6} {'z':>6} {'delta range':>22} "
        f"{'skewness':>9} {'kurtosis':>9}"
    )
    for step in sorted(results["tessellation"]):
        tess = results["tessellation"][step]
        a = cfg.a_init + step * (cfg.a_final - cfg.a_init) / cfg.nsteps
        delta = density_contrast(tess.volumes())
        h = histogram(delta, bins=100)
        rng_str = f"[{delta.min():7.2f}, {delta.max():8.2f}]"
        print(
            f"{step:5d} {a:6.3f} {1 / a - 1:6.2f} {rng_str:>22} "
            f"{h.skewness:9.2f} {h.kurtosis:9.2f}"
        )

    print(
        "\nExpected trend (paper Fig. 11): range of delta expands and both "
        "moments increase\nas particles coalesce into halos; early steps are "
        "near-Gaussian (kurtosis ~ 3-4)."
    )


if __name__ == "__main__":
    main()
