#!/usr/bin/env python3
"""Quickstart: parallel Voronoi tessellation of a random point cloud.

Demonstrates the standalone mode of tess (paper §III-C): decompose a
periodic box into blocks, exchange ghost particles, tessellate, and query
cell statistics — all from one call.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Bounds
from repro.core import tessellate
from repro.analysis import histogram, volume_range_concentration


def main() -> None:
    rng = np.random.default_rng(42)
    box_size = 16.0
    n_points = 4096
    domain = Bounds.cube(box_size)
    points = rng.uniform(0.0, box_size, size=(n_points, 3))

    print(f"Tessellating {n_points} random points in a {box_size} Mpc/h box")
    print("with 8 blocks (one rank-thread each) and a 3 Mpc/h ghost zone...\n")

    tess = tessellate(points, domain, nblocks=8, ghost=3.0)

    print(f"blocks:         {tess.num_blocks}")
    print(f"complete cells: {tess.num_cells} / {n_points}")
    print(f"total volume:   {tess.total_volume():.6f} (box = {domain.volume:.0f})")
    t = tess.timings
    print(
        f"phase CPU time: exchange {t.exchange_cpu * 1e3:.1f} ms, "
        f"compute {t.compute_cpu * 1e3:.0f} ms"
    )

    block = tess.blocks[0]
    print("\nData-model statistics (paper §III-C2):")
    print(f"  faces/cell:      {block.faces_per_cell():.2f}  (paper: ~15)")
    print(f"  vertices/face:   {block.vertices_per_face():.2f}  (paper: ~5)")
    rep = block.size_report()
    print(
        f"  geometry bytes:  {100 * rep.geometry_fraction:.1f}% of "
        f"{rep.total_bytes} B in block 0"
    )

    vols = tess.volumes()
    h = histogram(vols, bins=10)
    print("\nCell-volume histogram (10 bins):")
    for center, count in h.rows():
        bar = "#" * int(60 * count / max(h.counts.max(), 1))
        print(f"  {center:8.3f}  {count:6d}  {bar}")
    print(f"  skewness {h.skewness:.2f}, kurtosis {h.kurtosis:.2f}")
    frac = volume_range_concentration(vols, 0.1)
    print(f"  {100 * frac:.0f}% of cells fall in the smallest 10% of the range")


if __name__ == "__main__":
    main()
