#!/usr/bin/env python3
"""Density reconstruction shoot-out: CIC grid vs DTFE vs Voronoi cells.

The paper's background (§II-A) argues that tessellation-based density
estimators adapt to the anisotropic particle distribution where fixed grids
cannot.  This example reconstructs the density of an evolved snapshot three
ways and reports how each resolves a dense halo and an empty void, then
runs the two tessellation-era void finders on the same data: connected
components of large Voronoi cells (the paper's method) and the watershed
transform on the DTFE field (WVF), plus the multistream fraction.

Run:  python examples/density_estimators.py
"""

import numpy as np

from repro.hacc import SimulationConfig, run_simulation
from repro.hacc.mesh import cic_deposit
from repro.core import tessellate
from repro.analysis import (
    dtfe_density,
    dtfe_grid,
    find_voids,
    fraction_multistream,
    lagrangian_jacobian,
    voronoi_density,
    watershed_voids,
)


def main() -> None:
    cfg = SimulationConfig(np_side=16, nsteps=50, seed=9)
    print(f"Evolving {cfg.np_side}^3 particles for {cfg.nsteps} steps...")
    final = run_simulation(cfg, nranks=2)
    pos = final.positions * cfg.cell_size
    domain = cfg.domain()

    # --- three density estimates at the particles -----------------------
    cic = cic_deposit(final.positions, cfg.mesh_size)  # mean 1 per cell
    mean_rho = len(pos) / domain.volume
    rho_dtfe = dtfe_density(pos, domain=domain)
    tess = tessellate(pos, domain, nblocks=2, ghost=4.0, ids=final.ids)
    ids, rho_voro = voronoi_density(tess)

    # Align both adaptive estimates by particle id: rho_dtfe is per
    # position row; Voronoi densities come back keyed by site id.
    rho_voro_by_id = rho_voro[np.argsort(ids)]  # ascending id
    rho_dtfe_by_id = rho_dtfe[np.argsort(final.ids)]  # ascending id

    print("\nPeak density relative to the mean (how deep each estimator")
    print("resolves the densest halo):")
    print(f"  CIC grid ({cfg.mesh_size}^3):  {cic.max() / cic.mean():10.0f}x")
    print(f"  DTFE:             {np.nanmax(rho_dtfe) / mean_rho:10.0f}x")
    print(f"  Voronoi cells:    {rho_voro.max() / mean_rho:10.0f}x")
    print("(adaptive estimators resolve far deeper contrasts than the grid)")

    ratio = rho_voro_by_id / rho_dtfe_by_id
    ratio = ratio[np.isfinite(ratio)]
    print(
        f"\nDTFE vs Voronoi density per particle: median ratio "
        f"{np.median(ratio):.2f}, 10-90% [{np.quantile(ratio, 0.1):.2f}, "
        f"{np.quantile(ratio, 0.9):.2f}]"
    )

    # --- void finders on the same snapshot ------------------------------
    cat = find_voids(tess, min_cells=3)
    print(f"\nVoronoi-threshold voids (paper's method): {cat.num_voids} "
          f"(vmin = {cat.vmin:.3f})")

    field = dtfe_grid(pos, domain, grid_size=16)
    ws = watershed_voids(field, merge_threshold=float(mean_rho))
    sizes = np.sort(ws.basin_sizes())[::-1]
    print(f"Watershed (WVF) on the DTFE field: {ws.num_basins} basins, "
          f"largest {sizes[:5].tolist()} cells")

    # --- multistream classification --------------------------------------
    J = lagrangian_jacobian(pos, final.ids, cfg.np_side, domain)
    frac = fraction_multistream(J)
    print(f"\nMultistream (shell-crossed) mass fraction: {100 * frac:.1f}%")
    print("single-stream regions are the void interiors; multistream")
    print("regions trace collapsed walls, filaments, and halos.")


if __name__ == "__main__":
    main()
