#!/usr/bin/env python3
"""Void finding in an evolved N-body snapshot (paper Figures 1 and 9).

Pipeline: HACC-style simulation -> in situ tessellation -> progressive
volume thresholds -> connected components -> Minkowski functionals of the
surviving voids.  Mirrors the paper's workflow of §IV-B and the ParaView
plugin analysis of §III-D.

Run:  python examples/void_finding.py
"""


from repro.hacc import SimulationConfig
from repro.insitu import run_simulation_with_tools
from repro.analysis import find_voids, volume_threshold_for_fraction


def main() -> None:
    cfg = SimulationConfig(np_side=16, nsteps=60, seed=7)
    print(
        f"Simulating {cfg.np_side}^3 particles for {cfg.nsteps} steps "
        f"(z = {1 / cfg.a_init - 1:.0f} -> 0), then tessellating in situ...\n"
    )
    results = run_simulation_with_tools(
        cfg,
        {"tools": [{"tool": "tessellation", "params": {"ghost": 4.0}}]},
        nranks=4,
    )
    tess = results["tessellation"][cfg.nsteps]
    vols = tess.volumes()
    print(f"cells: {tess.num_cells}, volume range [{vols.min():.4f}, {vols.max():.3f}]")

    # Figure 9: progressive thresholds reveal connected voids.
    print("\nProgressive volume thresholds (paper Figure 9):")
    print(f"{'vmin':>8} {'kept cells':>11} {'voids':>6} {'largest(cells)':>15}")
    for vmin in (0.0, 0.5, 0.75, 1.0):
        cat = find_voids(tess, vmin=vmin, min_cells=2)
        largest = cat.voids[0].num_cells if cat.voids else 0
        kept = sum(v.num_cells for v in cat.voids)
        print(f"{vmin:8.2f} {kept:11d} {cat.num_voids:6d} {largest:15d}")

    # The paper's 10%-of-range rule with Minkowski shape analysis.
    vmin = volume_threshold_for_fraction(tess, 0.1)
    cat = find_voids(tess, vmin=vmin, min_cells=3, compute_minkowski=True)
    print(f"\nVoid catalog at the 10%-range threshold (vmin = {vmin:.3f}):")
    print(
        f"{'void':>4} {'cells':>6} {'V':>9} {'S':>9} {'C':>9} "
        f"{'genus':>6} {'T':>7} {'B':>7} {'L':>7}"
    )
    for i, void in enumerate(cat.voids[:10]):
        mk = void.minkowski
        print(
            f"{i:4d} {void.num_cells:6d} {mk.volume:9.2f} {mk.surface_area:9.2f} "
            f"{mk.mean_curvature:9.2f} {mk.genus:6.1f} "
            f"{mk.thickness:7.2f} {mk.breadth:7.2f} {mk.length:7.2f}"
        )
    print(
        "\nShapefinders: thickness T = 3V/S, breadth B = S/C, length "
        "L = C/4pi (Sahni et al.); all equal R for a sphere."
    )


if __name__ == "__main__":
    main()
