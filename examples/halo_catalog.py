#!/usr/bin/env python3
"""Halo finding + halo-seeded tessellation (paper §V future work).

The in situ framework runs a friends-of-friends halo finder alongside the
simulation; the paper then proposes tessellating with *halos* as Voronoi
sites instead of raw tracer particles, since halos map to observable
galaxies.  This example does both: FOF catalog at z=0, then a Voronoi
tessellation seeded at the halo centers.

Run:  python examples/halo_catalog.py
"""

import numpy as np

from repro.core import tessellate
from repro.hacc import SimulationConfig
from repro.insitu import run_simulation_with_tools
from repro.analysis import histogram


def main() -> None:
    cfg = SimulationConfig(np_side=16, nsteps=60, seed=11)
    print(f"Simulating {cfg.np_side}^3 particles with in situ FOF...\n")
    results = run_simulation_with_tools(
        cfg,
        {"tools": [{"tool": "halo_finder",
                    "params": {"linking_length": 0.2, "min_members": 8}}]},
        nranks=4,
    )
    catalog = results["halo_finder"][cfg.nsteps]
    print(f"halos found (>= 8 members): {catalog.num_halos}")
    if catalog.num_halos == 0:
        print("no halos at this scale; increase np_side or nsteps")
        return

    masses = catalog.masses()
    print(f"largest halos (members): {masses[:8].tolist()}")
    bins = np.array([8, 16, 32, 64, 128, 256, 1024])
    counts = catalog.mass_function(bins)
    print("\nMultiplicity function:")
    for lo, hi, c in zip(bins[:-1], bins[1:], counts):
        print(f"  {lo:5d} - {hi:5d} members: {c:4d} halos")

    # Paper §V: reconstruct with halos as Voronoi sites.
    centers = np.vstack([h.center for h in catalog.halos])
    domain = cfg.domain()
    print(f"\nTessellating {len(centers)} halo centers (halo-seeded Voronoi)...")
    spacing = (domain.volume / len(centers)) ** (1 / 3)
    tess = tessellate(centers, domain, nblocks=1, ghost=3.0 * spacing)
    print(f"complete halo cells: {tess.num_cells} / {len(centers)}")
    if tess.num_cells:
        h = histogram(tess.volumes(), bins=8)
        print("halo-cell volume distribution:")
        for center, count in h.rows():
            print(f"  {center:10.1f}  {count:4d} {'#' * count}")
        print(
            "\nLarge halo-cells trace the emptiest regions between observable "
            "structures —\nthe prefiltered void probe the paper proposes."
        )


if __name__ == "__main__":
    main()
