#!/usr/bin/env python3
"""Standalone mode on external point data, with file output and re-reading.

tess's standalone mode serves point sets that did not come from the coupled
simulation — any domain's particle data (the paper names molecular
dynamics, computational chemistry, groundwater transport, materials
science).  This example builds a Lennard-Jones-like liquid configuration,
tessellates it in parallel, writes the blocked tess file, and then re-reads
a single block the way the postprocessing plugin's parallel reader would.

Run:  python examples/standalone_tess.py [points.npy]
"""

import os
import sys
import tempfile

import numpy as np

from repro import Bounds
from repro.core import read_tessellation, tessellate
from repro.core.tess_io import read_blocks


def liquid_like_points(n_side: int, box: float, seed: int = 0) -> np.ndarray:
    """A jittered FCC-ish configuration: short-range order, no long-range."""
    rng = np.random.default_rng(seed)
    spacing = box / n_side
    grid = (np.mgrid[0:n_side, 0:n_side, 0:n_side].reshape(3, -1).T + 0.5) * spacing
    return (grid + rng.normal(0.0, 0.18 * spacing, size=grid.shape)) % box


def main() -> None:
    box = 12.0
    if len(sys.argv) > 1:
        points = np.load(sys.argv[1])
        print(f"loaded {len(points)} points from {sys.argv[1]}")
    else:
        points = liquid_like_points(12, box, seed=5)
        print(f"generated {len(points)} liquid-like points in a {box}^3 box")

    domain = Bounds.cube(box)
    out = os.path.join(tempfile.mkdtemp(prefix="tess_"), "standalone.tess")

    tess = tessellate(points, domain, nblocks=4, ghost=2.5, output_path=out)
    print(f"\ncomplete cells: {tess.num_cells} / {len(points)}")
    print(
        f"wrote {tess.output_bytes} bytes "
        f"({tess.output_bytes / len(points):.0f} B/particle) to {out}"
    )

    # Full re-read.
    ondisk = read_tessellation(out)
    assert ondisk.num_cells == tess.num_cells
    print(f"re-read all {ondisk.num_blocks} blocks: {ondisk.num_cells} cells")

    # Subset read — the plugin's parallel reader pulls blocks independently.
    blocks, dom = read_blocks(out, gids=[2])
    b = blocks[0]
    print(
        f"block 2 alone: {b.num_cells} cells, "
        f"extents {b.extents.min} .. {b.extents.max}"
    )
    print(f"  mean faces/cell {b.faces_per_cell():.2f}, "
          f"mean cell volume {b.volumes.mean():.3f}")

    # A structural observation: liquid-like order narrows the volume
    # distribution relative to a Poisson process.
    cv = tess.volumes().std() / tess.volumes().mean()
    print(f"\nvolume coefficient of variation: {cv:.3f} "
          "(Poisson-Voronoi would be ~0.42)")


if __name__ == "__main__":
    main()
