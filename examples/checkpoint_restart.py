#!/usr/bin/env python3
"""Checkpointing, density annotation, and exact restart (paper §V).

Writes a HACC-style 40-byte-per-particle checkpoint mid-run — with the
per-particle scalar slot carrying each particle's Voronoi cell density,
the augmentation the paper proposes in §V ("augment the output of particle
positions with the cell volume or density at each site") — then restarts
from the file and verifies the resumed run matches the uninterrupted one.

Run:  python examples/checkpoint_restart.py
"""

import os
import tempfile

import numpy as np

from repro.diy.comm import run_parallel
from repro.hacc import HACCSimulation, SimulationConfig
from repro.hacc.checkpoint import (
    BYTES_PER_PARTICLE,
    read_checkpoint,
    restart_simulation,
    write_checkpoint,
)
from repro.core import tessellate


def main() -> None:
    cfg = SimulationConfig(np_side=12, nsteps=20, seed=21)
    path = os.path.join(tempfile.mkdtemp(prefix="ckpt_"), "mid.ckpt")
    half = cfg.nsteps // 2

    def worker(comm):
        sim = HACCSimulation(cfg, comm=comm)
        while sim.step_index < half:
            sim.step()
        # Annotate each particle with its Voronoi cell density (§V).
        tess = tessellate(
            sim.positions_mpc(),
            cfg.domain(),
            nblocks=1,
            ghost=4.0,
            ids=sim.local.ids,
        ) if comm.size == 1 else None
        if tess is not None:
            density_by_id = dict(
                zip(tess.site_ids().tolist(), (1.0 / tess.volumes()).tolist())
            )
            scalar = np.array(
                [density_by_id.get(int(i), 0.0) for i in sim.local.ids]
            )
        else:
            scalar = None
        nbytes = write_checkpoint(path, comm, sim, scalar=scalar)
        # Continue to the end for the reference result.
        while sim.step_index < cfg.nsteps:
            sim.step()
        return nbytes, sim.local

    nbytes, reference = run_parallel(1, worker)[0]
    n = cfg.num_particles
    print(f"checkpoint at step {half}: {nbytes} bytes "
          f"({nbytes / n:.1f} B/particle; payload is {BYTES_PER_PARTICLE})")

    particles, density, a, step, np_side = read_checkpoint(path)
    print(f"read back: {len(particles)} particles at a={a:.3f}, step {step}")
    print(f"annotated densities: min {density.min():.3f}, "
          f"max {density.max():.3f} (1/cell-volume)")

    def resume(comm):
        sim = restart_simulation(path, cfg, comm=comm)
        while sim.step_index < cfg.nsteps:
            sim.step()
        return sim.local

    resumed = run_parallel(1, resume)[0]
    ra = reference.positions[np.argsort(reference.ids)]
    rb = resumed.positions[np.argsort(resumed.ids)]
    drift = np.abs(ra - rb).max()
    print(f"\nresumed vs uninterrupted run: max position drift {drift:.2e} "
          "grid units")
    print("(nonzero only through float32 checkpoint rounding)")


if __name__ == "__main__":
    main()
