#!/usr/bin/env python3
"""Tracking voids through time with the feature tree (paper §V).

Tessellates every few steps of a simulation, labels void components at a
fixed quantile threshold, and links them between outputs by shared member
cells — the feature-tree tracking the paper lists as future work.  Voids
are born, grow, merge, and occasionally split as walls dissolve.

Run:  python examples/void_tracking.py
"""

import numpy as np

from repro.hacc import SimulationConfig
from repro.insitu import run_simulation_with_tools
from repro.analysis import connected_components, track_components


def main() -> None:
    cfg = SimulationConfig(np_side=16, nsteps=60, seed=13)
    print(f"Simulating {cfg.np_side}^3 particles, tessellating every 10 steps...\n")
    results = run_simulation_with_tools(
        cfg,
        {"tools": [{"tool": "tessellation", "every": 10,
                    "params": {"ghost": 4.0}}]},
        nranks=2,
    )

    labelings = {}
    for step, tess in sorted(results["tessellation"].items()):
        v = tess.volumes()
        vmin = float(np.quantile(v, 0.85))  # top 15% largest cells
        lab = connected_components(tess, vmin=vmin)
        labelings[step] = lab
        sizes = np.sort(lab.sizes())[::-1]
        print(f"step {step:3d}: {lab.num_components:3d} void components, "
              f"largest {sizes[:4].tolist()}")

    tree = track_components(labelings, min_overlap=2)
    counts = tree.counts()
    print("\nFeature-tree events across the run:")
    for kind in ("continuation", "merge", "split", "birth", "death"):
        print(f"  {kind:13s} {counts.get(kind, 0):4d}")

    long_lived = sorted(tree.tracks, key=lambda t: -t.lifetime)[:5]
    print("\nLongest-lived voids (steps present -> member-cell counts):")
    for i, t in enumerate(long_lived):
        growth = " -> ".join(f"{s}:{n}" for s, n in zip(t.steps, t.sizes))
        print(f"  track {i}: {growth}")

    survivors = [t for t in tree.tracks if t.lifetime == len(tree.steps)]
    print(
        f"\n{len(survivors)} void(s) persist through every output — the "
        "stable large-scale voids;\nshort-lived tracks are threshold "
        "fluctuations absorbed by merges."
    )


if __name__ == "__main__":
    main()
